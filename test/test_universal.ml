(* The universal constructions of §4: merge operator, replay, the
   fetch-and-cons log construction (plain and truncating), and
   fetch-and-cons from consensus rounds (Figure 4-5). *)

open Wfs_spec
open Wfs_universal

let value = Alcotest.testable Value.pp Value.equal
let vlist = Alcotest.(list value)

let ints = List.map Value.int

(* --- merge operator --- *)

let test_merge_empty_prefix () =
  Alcotest.check vlist "Λ \\ h = h" (ints [ 1; 2 ])
    (Merge.merge ~prefix:[] ~suffix:(ints [ 1; 2 ]))

let test_merge_dedup () =
  Alcotest.check vlist "drops entries already present"
    (ints [ 1; 3; 2 ])
    (Merge.merge ~prefix:(ints [ 1; 2; 3 ]) ~suffix:(ints [ 2 ]))

let test_merge_preserves_order () =
  Alcotest.check vlist "prefix order preserved"
    (ints [ 5; 4; 9 ])
    (Merge.merge ~prefix:(ints [ 5; 4 ]) ~suffix:(ints [ 9 ]))

let test_trim () =
  Alcotest.(check (option vlist))
    "items after x" (Some (ints [ 3; 4 ]))
    (Merge.trim (ints [ 1; 2; 3; 4 ]) (Value.int 2));
  Alcotest.(check (option vlist))
    "missing" None
    (Merge.trim (ints [ 1 ]) (Value.int 7))

let test_suffix_coherence () =
  Alcotest.(check bool) "suffix" true (Merge.is_suffix (ints [ 2; 3 ]) (ints [ 1; 2; 3 ]));
  Alcotest.(check bool) "not suffix" false
    (Merge.is_suffix (ints [ 1; 3 ]) (ints [ 1; 2; 3 ]));
  Alcotest.(check bool) "coherent" true
    (Merge.coherent [ ints [ 3 ]; ints [ 2; 3 ]; ints [ 1; 2; 3 ] ]);
  Alcotest.(check bool) "incoherent" false
    (Merge.coherent [ ints [ 1; 3 ]; ints [ 2; 3 ] ])

(* qcheck: merge result contains exactly the union, suffix preserved *)
let gen_small_ints = QCheck2.Gen.(list_size (int_range 0 6) (int_range 0 9))

let prop_merge_suffix_preserved =
  QCheck2.Test.make ~name:"merge preserves the suffix" ~count:300
    QCheck2.Gen.(pair gen_small_ints gen_small_ints)
    (fun (p, s) ->
      let p = ints p and s = ints s in
      Merge.is_suffix s (Merge.merge ~prefix:p ~suffix:s))

let prop_merge_union =
  QCheck2.Test.make ~name:"merge contains prefix ∪ suffix, nothing else"
    ~count:300
    QCheck2.Gen.(pair gen_small_ints gen_small_ints)
    (fun (p, s) ->
      let p = ints p and s = ints s in
      let m = Merge.merge ~prefix:p ~suffix:s in
      List.for_all (fun x -> Merge.mem x m) (p @ s)
      && List.for_all (fun x -> Merge.mem x p || Merge.mem x s) m)

let prop_merge_idempotent =
  QCheck2.Test.make ~name:"merging twice adds nothing" ~count:300
    QCheck2.Gen.(pair gen_small_ints gen_small_ints)
    (fun (p, s) ->
      let p = ints p and s = ints s in
      let once = Merge.merge ~prefix:p ~suffix:s in
      List.equal Value.equal once (Merge.merge ~prefix:p ~suffix:once))

(* --- replay --- *)

let queue ?(name = "q") () =
  Queues.fifo ~name ~items:(ints [ 1; 2; 3 ]) ()

let test_replay_roundtrip () =
  let spec = queue () in
  let log =
    [
      Replay.op_entry ~pid:1 ~seq:0 Queues.deq;
      Replay.op_entry ~pid:0 ~seq:1 (Queues.enq (Value.int 2));
      Replay.op_entry ~pid:0 ~seq:0 (Queues.enq (Value.int 1));
    ]
  in
  let state, cost = Replay.reconstruct spec log in
  Alcotest.(check int) "replayed all" 3 cost;
  Alcotest.check value "state after enq1;enq2;deq" (Value.list (ints [ 2 ])) state

let test_replay_stops_at_state () =
  let spec = queue () in
  let log =
    [
      Replay.op_entry ~pid:0 ~seq:1 (Queues.enq (Value.int 3));
      Replay.state_entry (Value.list (ints [ 1; 2 ]));
      Replay.op_entry ~pid:0 ~seq:0 (Queues.enq (Value.int 9));
      (* below the state entry: must be ignored *)
    ]
  in
  let state, cost = Replay.reconstruct spec log in
  Alcotest.(check int) "replayed one op" 1 cost;
  Alcotest.check value "state" (Value.list (ints [ 1; 2; 3 ])) state

let test_response () =
  let spec = queue () in
  let log = [ Replay.op_entry ~pid:0 ~seq:0 (Queues.enq (Value.int 7)) ] in
  let result, post, cost = Replay.response spec log Queues.deq in
  Alcotest.check value "deq sees 7" (Value.int 7) result;
  Alcotest.check value "post empty" (Value.list []) post;
  Alcotest.(check int) "cost" 1 cost

(* --- log universal construction (§4.1) --- *)

let test_log_universal_queue () =
  let v =
    Log_universal.verify ~target:(queue ())
      ~scripts:
        [|
          [ Queues.enq (Value.int 1); Queues.deq ];
          [ Queues.enq (Value.int 2); Queues.deq ];
        |]
      ()
  in
  Alcotest.(check bool) "ok" true v.Log_universal.ok;
  Alcotest.(check bool) "wait-free" true v.Log_universal.wait_free

let test_log_universal_counter () =
  let v =
    Log_universal.verify
      ~target:(Collections.counter ~name:"c" ())
      ~scripts:
        [|
          [ Collections.incr; Collections.incr ];
          [ Collections.incr; Collections.read ];
          [ Collections.decr ];
        |]
      ()
  in
  Alcotest.(check bool) "ok" true v.Log_universal.ok

let test_log_universal_stack () =
  let v =
    Log_universal.verify
      ~target:(Queues.stack ~name:"s" ~items:(ints [ 1; 2 ]) ())
      ~scripts:
        [| [ Queues.push (Value.int 1); Queues.pop ]; [ Queues.push (Value.int 2) ] |]
      ()
  in
  Alcotest.(check bool) "ok" true v.Log_universal.ok

let test_log_universal_abstract_history_linearizable () =
  (* cross-check: single runs produce linearizable abstract histories *)
  let target = queue () in
  List.iter
    (fun seed ->
      let _, abstract =
        Log_universal.run ~target
          ~scripts:
            [|
              [ Queues.enq (Value.int 1); Queues.deq ];
              [ Queues.enq (Value.int 2); Queues.deq ];
            |]
          ~schedule:(Wfs_sim.Scheduler.random ~seed) ()
      in
      Alcotest.(check bool)
        (Fmt.str "linearizable (seed %d)" seed)
        true
        (Wfs_history.Linearizability.is_linearizable [ ("q", target) ] abstract))
    [ 1; 2; 3; 4; 5 ]

(* --- truncating construction --- *)

let test_truncating_ok_and_bounded () =
  let v =
    Truncating_universal.verify ~target:(queue ())
      ~scripts:
        [|
          [ Queues.enq (Value.int 1); Queues.deq ];
          [ Queues.enq (Value.int 2); Queues.deq ];
        |]
      ()
  in
  Alcotest.(check bool) "ok" true v.Truncating_universal.ok;
  Alcotest.(check bool) "replay bounded by n" true
    (v.Truncating_universal.max_replay <= 2)

let test_truncating_replay_stays_bounded_long_script () =
  (* sequential run with a long script: plain log replay would grow
     linearly; truncation keeps every replay ≤ n *)
  let script = List.concat (List.init 8 (fun i -> [ Queues.enq (Value.int (i mod 3 + 1)); Queues.deq ])) in
  let outcome =
    Truncating_universal.run ~target:(queue ())
      ~scripts:[| script; [ Queues.enq (Value.int 1) ] |]
      ~schedule:Wfs_sim.Scheduler.round_robin ()
  in
  Alcotest.(check bool) "completed" true outcome.Wfs_sim.Runner.completed;
  List.iter
    (fun (_, d) ->
      match d with
      | Value.List entries ->
          List.iter
            (fun e ->
              let _, cost = Value.as_pair e in
              Alcotest.(check bool) "cost ≤ 2" true (Value.as_int cost <= 2))
            entries
      | _ -> Alcotest.fail "bad decision shape")
    outcome.Wfs_sim.Runner.decisions

let test_plain_log_replay_grows () =
  (* the contrast: without truncation the k-th op replays k-1 entries *)
  let target = Collections.counter ~name:"c" () in
  let k = 10 in
  let script = List.init k (fun _ -> Collections.incr) in
  let cfg = Log_universal.config ~target ~scripts:[| script |] in
  let outcome =
    Wfs_sim.Runner.run ~procs:cfg.Wfs_sim.Explorer.procs
      ~env:cfg.Wfs_sim.Explorer.env ~schedule:Wfs_sim.Scheduler.round_robin ()
  in
  Alcotest.(check bool) "completed" true outcome.Wfs_sim.Runner.completed;
  (* final log length = k: the last op replayed k-1 entries *)
  let final_log =
    match outcome.Wfs_sim.Runner.trace with
    | [] -> Alcotest.fail "no steps"
    | steps -> (
        match List.rev steps with
        | last :: _ -> Value.as_list last.Wfs_sim.Runner.res
        | [] -> assert false)
  in
  Alcotest.(check int) "last op saw k-1 predecessors" (k - 1)
    (List.length final_log)

(* --- consensus-based fetch-and-cons (Figure 4-5) --- *)

let test_consensus_fac_coherent_n2 () =
  let v =
    Consensus_fac.verify
      ~scripts:[| [ Queues.enq (Value.int 1) ]; [ Queues.enq (Value.int 2) ] |]
      ()
  in
  Alcotest.(check bool) "ok" true v.Consensus_fac.ok;
  Alcotest.(check bool) "wait-free" true v.Consensus_fac.wait_free

let test_consensus_fac_coherent_n2_multi () =
  let v =
    Consensus_fac.verify
      ~scripts:
        [|
          [ Queues.enq (Value.int 1); Queues.deq ];
          [ Queues.enq (Value.int 2) ];
        |]
      ()
  in
  Alcotest.(check bool) "ok" true v.Consensus_fac.ok

let test_consensus_fac_n3_random () =
  (* n=3 exhaustively is too large; check coherence across many seeds *)
  List.iter
    (fun seed ->
      let outcome =
        Consensus_fac.run
          ~scripts:
            [|
              [ Queues.enq (Value.int 1) ];
              [ Queues.enq (Value.int 2) ];
              [ Queues.enq (Value.int 3) ];
            |]
          ~schedule:(Wfs_sim.Scheduler.random ~seed) ()
      in
      Alcotest.(check bool) "completed" true outcome.Wfs_sim.Runner.completed;
      let views =
        List.map (fun (_, _, v) -> v) (Consensus_fac.views_of_outcome outcome)
      in
      Alcotest.(check bool)
        (Fmt.str "coherent (seed %d)" seed)
        true (Merge.coherent views))
    (List.init 25 (fun i -> i * 7))

let test_consensus_fac_realtime_suffix () =
  (* Lemma 25: under the sequential scheduler P0's operation completes
     before P1 starts, so P0's view must be a suffix of P1's *)
  let outcome =
    Consensus_fac.run
      ~scripts:[| [ Queues.enq (Value.int 1) ]; [ Queues.enq (Value.int 2) ] |]
      ~schedule:Wfs_sim.Scheduler.sequential ()
  in
  match Consensus_fac.views_of_outcome outcome with
  | [ (0, _, v0); (1, _, v1) ] ->
      Alcotest.(check bool) "P0's view is a suffix of P1's" true
        (Merge.is_suffix v0 v1)
  | other ->
      Alcotest.failf "expected two views, got %d" (List.length other)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_merge_suffix_preserved; prop_merge_union; prop_merge_idempotent ]

let suite =
  [
    ( "universal.merge",
      [
        Alcotest.test_case "empty prefix" `Quick test_merge_empty_prefix;
        Alcotest.test_case "dedup" `Quick test_merge_dedup;
        Alcotest.test_case "order" `Quick test_merge_preserves_order;
        Alcotest.test_case "trim" `Quick test_trim;
        Alcotest.test_case "suffix/coherence" `Quick test_suffix_coherence;
      ] );
    ("universal.merge.properties", qsuite);
    ( "universal.replay",
      [
        Alcotest.test_case "roundtrip" `Quick test_replay_roundtrip;
        Alcotest.test_case "stops at state" `Quick test_replay_stops_at_state;
        Alcotest.test_case "response" `Quick test_response;
      ] );
    ( "universal.log",
      [
        Alcotest.test_case "queue exhaustive" `Quick test_log_universal_queue;
        Alcotest.test_case "counter 3 procs" `Quick test_log_universal_counter;
        Alcotest.test_case "stack" `Quick test_log_universal_stack;
        Alcotest.test_case "abstract history linearizable" `Quick
          test_log_universal_abstract_history_linearizable;
      ] );
    ( "universal.truncating",
      [
        Alcotest.test_case "exhaustive + bounded replay" `Quick
          test_truncating_ok_and_bounded;
        Alcotest.test_case "long script stays bounded" `Quick
          test_truncating_replay_stays_bounded_long_script;
        Alcotest.test_case "plain log replay grows" `Quick
          test_plain_log_replay_grows;
      ] );
    ( "universal.consensus-fac",
      [
        Alcotest.test_case "n=2 exhaustive (Lemma 24)" `Quick
          test_consensus_fac_coherent_n2;
        Alcotest.test_case "n=2 multi-op exhaustive" `Quick
          test_consensus_fac_coherent_n2_multi;
        Alcotest.test_case "n=3 random coherence" `Quick
          test_consensus_fac_n3_random;
        Alcotest.test_case "real-time suffix (Lemma 25)" `Quick
          test_consensus_fac_realtime_suffix;
      ] );
  ]

(* --- Theorem 26 composed: consensus -> fetch-and-cons -> object --- *)

let test_composed_counter_n2 () =
  let v =
    Composed.verify
      ~target:(Collections.counter ~name:"c" ())
      ~scripts:[| [ Collections.incr ]; [ Collections.incr ] |]
      ()
  in
  Alcotest.(check bool) "ok" true v.Composed.ok

let test_composed_queue_n2 () =
  let v =
    Composed.verify ~target:(queue ())
      ~scripts:[| [ Queues.enq (Value.int 1) ]; [ Queues.deq ] |]
      ()
  in
  Alcotest.(check bool) "ok" true v.Composed.ok

let test_composed_queue_multi_op () =
  let v =
    Composed.verify ~target:(queue ())
      ~scripts:
        [| [ Queues.enq (Value.int 1); Queues.deq ]; [ Queues.enq (Value.int 2) ] |]
      ()
  in
  Alcotest.(check bool) "ok" true v.Composed.ok

let test_composed_run_linearizes () =
  (* seeded runs: the (pid, seq, op, result) tuples must form a legal
     sequential history in SOME order consistent with the views; cross
     check with the linearizability checker over instantaneous ops *)
  let target = queue () in
  List.iter
    (fun seed ->
      let outcome, triples =
        Composed.run ~target
          ~scripts:
            [| [ Queues.enq (Value.int 1); Queues.deq ];
               [ Queues.enq (Value.int 2); Queues.deq ] |]
          ~schedule:(Wfs_sim.Scheduler.random ~seed) ()
      in
      Alcotest.(check bool) "completed" true outcome.Wfs_sim.Runner.completed;
      Alcotest.(check int) "all ops answered" 4 (List.length triples);
      let h =
        List.concat_map
          (fun (pid, _, op, res) ->
            [
              Wfs_history.Event.invoke ~pid ~obj:"target" op;
              Wfs_history.Event.respond ~pid ~obj:"target" res;
            ])
          triples
      in
      (* sequential-consistency suffices here: triples are not ordered
         by real time *)
      let spec = Queues.fifo ~name:"target" ~items:(ints [ 1; 2; 3 ]) () in
      Alcotest.(check bool)
        (Fmt.str "SC (seed %d)" seed)
        true
        (Wfs_history.Sequential_consistency.is_sequentially_consistent spec h))
    [ 3; 14; 15 ]

let composed_suite =
  ( "universal.composed-thm26",
    [
      Alcotest.test_case "counter n=2 exhaustive" `Quick test_composed_counter_n2;
      Alcotest.test_case "queue n=2 exhaustive" `Quick test_composed_queue_n2;
      Alcotest.test_case "queue multi-op exhaustive" `Quick
        test_composed_queue_multi_op;
      Alcotest.test_case "seeded runs linearize" `Quick
        test_composed_run_linearizes;
    ] )

let suite = suite @ [ composed_suite ]
