(* Interference classification (Theorem 6), the bounded-protocol solver
   (Theorems 2, 4, 7, 9, 11), and the Figure 1-1 table. *)

open Wfs_spec
open Wfs_hierarchy

let int_domain = [ Value.int 0; Value.int 1; Value.int 2 ]

(* --- interference classifier --- *)

let concrete_of ops = Interference.concretize ops

let test_reads_commute () =
  match concrete_of [ Registers.read_op ] with
  | [ read ] ->
      Alcotest.(check bool)
        "read commutes with read" true
        (Interference.classify_pair ~domain:int_domain read read
        = Interference.Commute)
  | _ -> Alcotest.fail "expected one concrete read"

let test_writes_overwrite () =
  match concrete_of [ Registers.write_ops [ Value.int 1; Value.int 2 ] ] with
  | [ w1; w2 ] ->
      let c = Interference.classify_pair ~domain:int_domain w1 w2 in
      Alcotest.(check bool)
        "writes overwrite each other" true
        (c = Interference.First_overwrites || c = Interference.Second_overwrites)
  | _ -> Alcotest.fail "expected two concrete writes"

let test_tas_faa_interfere () =
  (* tas overwrites faa: tas(faa v) = 1 = tas v *)
  let tas = List.hd (concrete_of [ Registers.test_and_set_op ]) in
  let faa = List.hd (concrete_of [ Registers.fetch_and_add_op [ 1 ] ]) in
  Alcotest.(check bool)
    "pair interferes" true
    (Interference.classify_pair ~domain:int_domain tas faa
    <> Interference.Interfering_not)

let test_cas_escapes () =
  let cs = concrete_of [ Registers.compare_and_swap_op int_domain ] in
  Alcotest.(check bool)
    "cas set is NOT interfering" false
    (Interference.interfering ~domain:int_domain cs);
  Alcotest.(check bool)
    "non-interfering pair witnessed" true
    (Interference.non_interfering_pairs ~domain:int_domain cs <> [])

let test_classify_registers_level1 () =
  let v =
    Interference.classify ~family:"registers" ~domain:int_domain
      [ Registers.read_op; Registers.write_ops int_domain ]
  in
  Alcotest.(check bool) "interfering" true v.Interference.interfering_set;
  Alcotest.(check bool)
    "no observable nontrivial op" false
    v.Interference.has_observable_nontrivial;
  Alcotest.(check bool) "level 1" true (v.Interference.level = `Level_1)

let test_classify_classical_level2 () =
  let v =
    Interference.classify ~family:"classical" ~domain:int_domain
      [
        Registers.read_op;
        Registers.write_ops int_domain;
        Registers.test_and_set_op;
        Registers.swap_op int_domain;
        Registers.fetch_and_add_op [ 1 ];
      ]
  in
  Alcotest.(check bool) "interfering" true v.Interference.interfering_set;
  Alcotest.(check bool) "level 2" true (v.Interference.level = `Level_2)

let test_classify_cas_above2 () =
  let v =
    Interference.classify ~family:"cas" ~domain:int_domain
      [ Registers.read_op; Registers.compare_and_swap_op int_domain ]
  in
  Alcotest.(check bool) "above 2" true (v.Interference.level = `Above_2)

let test_observable_nontrivial () =
  let write = List.hd (concrete_of [ Registers.write_ops [ Value.int 1 ] ]) in
  Alcotest.(check bool)
    "write is blind" false
    (Interference.observable_nontrivial ~domain:int_domain write);
  let tas = List.hd (concrete_of [ Registers.test_and_set_op ]) in
  Alcotest.(check bool)
    "tas observes" true
    (Interference.observable_nontrivial ~domain:int_domain tas)

(* --- solver --- *)

let binary_register () =
  Registers.atomic ~name:"r" ~init:(Value.int 0) [ Value.int 0; Value.int 1 ]

let preloaded_queue () =
  Queues.fifo ~name:"q"
    ~initial:[ Value.str "a"; Value.str "b" ]
    ~items:[ Value.str "a"; Value.str "b" ]
    ()

let solve ?max_nodes ~n ~depth spec =
  Solver.solve ?max_nodes (Solver.of_spec ~n ~depth spec)

let is_solvable = function Solver.Solvable _ -> true | _ -> false
let is_unsolvable = function Solver.Unsolvable -> true | _ -> false

let test_thm2_registers_unsolvable () =
  (* Theorem 2, bounded form: no ≤2-step register protocol for 2
     processes *)
  Alcotest.(check bool) "d=1" true (is_unsolvable (solve ~n:2 ~depth:1 (binary_register ())));
  Alcotest.(check bool) "d=2" true (is_unsolvable (solve ~n:2 ~depth:2 (binary_register ())))

let test_thm4_tas_solvable () =
  match solve ~n:2 ~depth:1 (Registers.test_and_set ()) with
  | Solver.Solvable strategy ->
      (* the synthesized protocol starts with the test-and-set *)
      let initial_actions =
        List.filter
          (fun a -> Value.equal a.Solver.view (Value.list []))
          strategy
      in
      Alcotest.(check int) "both processes have initial actions" 2
        (List.length initial_actions);
      List.iter
        (fun a ->
          match a.Solver.chosen with
          | Solver.Do (_, op) ->
              Alcotest.(check string) "first step is tas" "test-and-set"
                (Op.name op)
          | Solver.Decide _ -> Alcotest.fail "decided without stepping")
        initial_actions
  | v -> Alcotest.failf "expected solvable, got %a" Solver.pp_verdict v

let test_thm6_tas_unsolvable_3 () =
  Alcotest.(check bool) "tas n=3 d=1" true
    (is_unsolvable (solve ~n:3 ~depth:1 (Registers.test_and_set ())))

let test_thm7_cas_solvable () =
  Alcotest.(check bool) "cas n=2 d=1" true
    (is_solvable
       (solve ~n:2 ~depth:1
          (Registers.compare_and_swap ~name:"r" ~init:Value.bottom
             [ Value.bottom; Value.pid 0; Value.pid 1 ])));
  Alcotest.(check bool) "cas n=3 d=1" true
    (is_solvable
       (solve ~n:3 ~depth:1
          (Registers.compare_and_swap ~name:"r" ~init:Value.bottom
             [ Value.bottom; Value.pid 0; Value.pid 1; Value.pid 2 ])))

let test_thm9_queue_solvable () =
  Alcotest.(check bool) "queue n=2 d=1" true
    (is_solvable (solve ~n:2 ~depth:1 (preloaded_queue ())))

let test_thm11_queue_unsolvable_3 () =
  Alcotest.(check bool) "queue n=3 d=1" true
    (is_unsolvable (solve ~n:3 ~depth:1 (preloaded_queue ())))

let test_thm11_queue_unsolvable_3_d2 () =
  (* the expensive instance: no 3-process queue protocol with ≤ 2 ops *)
  Alcotest.(check bool) "queue n=3 d=2" true
    (is_unsolvable
       (solve ~max_nodes:100_000_000 ~n:3 ~depth:2 (preloaded_queue ())))

let test_dds_fifo_channel_unsolvable () =
  Alcotest.(check bool) "fifo channel n=2 d=2" true
    (is_unsolvable
       (solve ~n:2 ~depth:2
          (Channels.fifo_point_to_point ~name:"ch" ~processes:2
             ~messages:[ Value.pid 0; Value.pid 1 ]
             ())))

let test_budget_reported () =
  match
    Solver.solve ~max_nodes:100
      (Solver.of_spec ~n:3 ~depth:2 (preloaded_queue ()))
  with
  | Solver.Out_of_budget { nodes } ->
      Alcotest.(check bool) "nodes counted" true (nodes > 0)
  | _ -> Alcotest.fail "expected budget exhaustion with tiny limit"

let test_prune_ablation_same_verdict () =
  (* pruning must not change answers, only node counts *)
  let v1 = Solver.solve (Solver.of_spec ~n:2 ~depth:2 (binary_register ())) in
  let v2 =
    Solver.solve ~prune_agreement:false
      (Solver.of_spec ~n:2 ~depth:2 (binary_register ()))
  in
  Alcotest.(check bool) "both unsolvable" true
    (is_unsolvable v1 && is_unsolvable v2)

(* the synthesized strategy, replayed through the simulator, must verify *)
let test_synthesized_strategy_verifies () =
  let spec = Registers.test_and_set () in
  match solve ~n:2 ~depth:1 spec with
  | Solver.Solvable strategy ->
      let open Wfs_sim in
      let program pid local =
        let view = local in
        let entry =
          List.find_opt
            (fun a -> a.Solver.pid = pid && Value.equal a.Solver.view view)
            strategy
        in
        match entry with
        | Some { Solver.chosen = Solver.Do (obj, op); _ } ->
            Process.invoke ~obj op (fun res ->
                Value.list (res :: Value.as_list view))
        | Some { Solver.chosen = Solver.Decide j; _ } ->
            Process.decide (Value.pid j)
        | None -> Alcotest.failf "no strategy entry for P%d" pid
      in
      let procs =
        Array.init 2 (fun pid ->
            Process.make ~pid ~init:(Value.list []) (program pid))
      in
      let env = Env.make [ (spec.Object_spec.name, spec) ] in
      let p =
        Wfs_consensus.Protocol.make ~name:"synthesized-tas" ~theorem:"Thm 4"
          ~procs ~env
      in
      let report = Wfs_consensus.Protocol.verify p in
      Alcotest.(check bool) "synthesized protocol passes" true
        (Wfs_consensus.Protocol.passed report)
  | v -> Alcotest.failf "expected solvable, got %a" Solver.pp_verdict v

(* --- the Figure 1-1 table --- *)

let test_table_consistent () =
  let table = Table.generate () in
  Alcotest.(check bool) "every row consistent with the paper" true
    (Table.consistent table);
  Alcotest.(check bool) "covers the object families" true
    (List.length table >= 14)

let test_table_rows_have_evidence () =
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (Fmt.str "%s has evidence" row.Table.object_family)
        true
        (row.Table.evidence <> []))
    (Table.generate ())

let suite =
  [
    ( "hierarchy.interference",
      [
        Alcotest.test_case "reads commute" `Quick test_reads_commute;
        Alcotest.test_case "writes overwrite" `Quick test_writes_overwrite;
        Alcotest.test_case "tas/faa interfere" `Quick test_tas_faa_interfere;
        Alcotest.test_case "cas escapes Thm 6" `Quick test_cas_escapes;
        Alcotest.test_case "registers level 1" `Quick
          test_classify_registers_level1;
        Alcotest.test_case "classical level 2" `Quick
          test_classify_classical_level2;
        Alcotest.test_case "cas above 2" `Quick test_classify_cas_above2;
        Alcotest.test_case "write is blind" `Quick test_observable_nontrivial;
      ] );
    ( "hierarchy.solver",
      [
        Alcotest.test_case "Thm 2: registers unsolvable" `Quick
          test_thm2_registers_unsolvable;
        Alcotest.test_case "Thm 4: tas synthesized" `Quick
          test_thm4_tas_solvable;
        Alcotest.test_case "Thm 6: tas n=3 unsolvable" `Quick
          test_thm6_tas_unsolvable_3;
        Alcotest.test_case "Thm 7: cas solvable" `Quick test_thm7_cas_solvable;
        Alcotest.test_case "Thm 9: queue solvable" `Quick
          test_thm9_queue_solvable;
        Alcotest.test_case "Thm 11: queue n=3 d=1 unsolvable" `Quick
          test_thm11_queue_unsolvable_3;
        Alcotest.test_case "Thm 11: queue n=3 d=2 unsolvable" `Slow
          test_thm11_queue_unsolvable_3_d2;
        Alcotest.test_case "DDS: fifo channel unsolvable" `Quick
          test_dds_fifo_channel_unsolvable;
        Alcotest.test_case "budget reporting" `Quick test_budget_reported;
        Alcotest.test_case "prune ablation agrees" `Quick
          test_prune_ablation_same_verdict;
        Alcotest.test_case "synthesized strategy verifies" `Quick
          test_synthesized_strategy_verifies;
      ] );
    ( "hierarchy.table",
      [
        Alcotest.test_case "Figure 1-1 consistent" `Quick test_table_consistent;
        Alcotest.test_case "rows have evidence" `Quick
          test_table_rows_have_evidence;
      ] );
  ]

(* --- the solver-measured census --- *)

let test_census_register () =
  let m = Census.measure (Zoo.register ()) in
  Alcotest.(check bool) "register n=2 unsolvable" true
    (fst m.Census.two_proc = Census.Unsolvable);
  Alcotest.(check bool) "register n=3 unsolvable" true
    (fst m.Census.three_proc = Census.Unsolvable)

let test_census_tas () =
  let m = Census.measure (Zoo.test_and_set ()) in
  Alcotest.(check bool) "tas n=2 solvable" true
    (fst m.Census.two_proc = Census.Solvable);
  Alcotest.(check bool) "tas n=3 unsolvable" true
    (fst m.Census.three_proc = Census.Unsolvable)

let test_census_cas () =
  let m = Census.measure (Zoo.compare_and_swap ()) in
  Alcotest.(check bool) "cas n=2 solvable" true
    (fst m.Census.two_proc = Census.Solvable);
  Alcotest.(check bool) "cas n=3 solvable" true
    (fst m.Census.three_proc = Census.Solvable)

let test_census_consensus_object () =
  let m = Census.measure ~depth2:1 ~depth3:1 (Zoo.consensus ()) in
  Alcotest.(check bool) "consensus object solvable at both" true
    (fst m.Census.two_proc = Census.Solvable
    && fst m.Census.three_proc = Census.Solvable)

let census_suite =
  ( "hierarchy.census",
    [
      Alcotest.test_case "register" `Quick test_census_register;
      Alcotest.test_case "test-and-set" `Quick test_census_tas;
      Alcotest.test_case "compare-and-swap" `Quick test_census_cas;
      Alcotest.test_case "consensus object" `Quick test_census_consensus_object;
    ] )

let suite = suite @ [ census_suite ]

(* the census discovers the paper's queue pre-loading trick on its own *)
let test_census_queue_preloading_discovered () =
  let m =
    Census.measure
      (Queues.fifo ~name:"q" ~items:[ Value.str "a"; Value.str "b" ] ())
  in
  Alcotest.(check bool) "queue n=2 solvable from some init" true
    (fst m.Census.two_proc = Census.Solvable);
  (match m.Census.winning_init2 with
  | Some init ->
      Alcotest.(check bool) "winning init is non-empty" true
        (Value.as_list init <> [])
  | None -> Alcotest.fail "expected a winning initialization");
  Alcotest.(check bool) "queue n=3 unsolvable at d=1" true
    (fst m.Census.three_proc = Census.Unsolvable)

let census_discovery_suite =
  ( "hierarchy.census.discovery",
    [ Alcotest.test_case "queue pre-loading discovered" `Quick
        test_census_queue_preloading_discovered ] )

let suite = suite @ [ census_discovery_suite ]

(* every synthesized strategy must itself verify, for several objects *)
let replay_strategy_as_protocol ~n spec strategy =
  let open Wfs_sim in
  let program pid local =
    let entry =
      List.find_opt
        (fun a -> a.Solver.pid = pid && Value.equal a.Solver.view local)
        strategy
    in
    match entry with
    | Some { Solver.chosen = Solver.Do (obj, op); _ } ->
        Process.invoke ~obj op (fun res ->
            Value.list (res :: Value.as_list local))
    | Some { Solver.chosen = Solver.Decide j; _ } -> Process.decide (Value.pid j)
    | None -> Alcotest.failf "no strategy entry for P%d at %a" pid Value.pp local
  in
  let procs =
    Array.init n (fun pid -> Process.make ~pid ~init:(Value.list []) (program pid))
  in
  let env = Env.make [ (spec.Object_spec.name, spec) ] in
  Wfs_consensus.Protocol.make ~name:"synthesized" ~theorem:"solver" ~procs ~env

let test_synthesized_strategies_verify_many () =
  let cases =
    [
      (2, 1, Registers.test_and_set ());
      (2, 1, preloaded_queue ());
      (2, 1,
       Registers.compare_and_swap ~name:"r" ~init:Value.bottom
         [ Value.bottom; Value.pid 0; Value.pid 1 ]);
      (3, 1,
       Registers.compare_and_swap ~name:"r" ~init:Value.bottom
         [ Value.bottom; Value.pid 0; Value.pid 1; Value.pid 2 ]);
      (2, 2, Registers.fetch_and_add ~name:"faa" ~init:0 ());
    ]
  in
  List.iter
    (fun (n, depth, spec) ->
      match Solver.solve (Solver.of_spec ~n ~depth spec) with
      | Solver.Solvable strategy ->
          let p = replay_strategy_as_protocol ~n spec strategy in
          let report = Wfs_consensus.Protocol.verify p in
          Alcotest.(check bool)
            (Fmt.str "%s n=%d verifies" spec.Object_spec.name n)
            true
            (Wfs_consensus.Protocol.passed report)
      | v ->
          Alcotest.failf "%s n=%d: expected solvable, got %a"
            spec.Object_spec.name n Solver.pp_verdict v)
    cases

let synthesized_suite =
  ( "hierarchy.synthesis",
    [ Alcotest.test_case "synthesized strategies verify" `Quick
        test_synthesized_strategies_verify_many ] )

let suite = suite @ [ synthesized_suite ]
