(* Tests for Wfs_obs.Profile (the span profiler) and its integration
   points: structural validity of the exported Chrome trace (balanced
   B/E per tid, non-decreasing timestamps, one thread row per domain),
   the no-tearing guarantee under ring wraparound, pool member stats,
   and the tentpole invariant that profiling does not perturb parallel
   verification verdicts. *)

open Wfs_sim
open Wfs_consensus
module Json = Wfs_obs.Json
module Profile = Wfs_obs.Profile

(* --- trace structure helpers --- *)

let trace_events j =
  match Json.member "traceEvents" j with
  | Some (Json.List evs) -> evs
  | _ -> Alcotest.fail "traceEvents missing or not a list"

let str_field k ev = Option.bind (Json.member k ev) Json.to_str
let num_field k ev = Option.bind (Json.member k ev) Json.to_number
let int_field k ev = Option.bind (Json.member k ev) Json.to_int

(* Every tid that appears on a non-metadata event, with that tid's
   events in file order. *)
let events_by_tid evs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match (str_field "ph" ev, int_field "tid" ev) with
      | Some ph, Some tid when ph <> "M" ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt tbl tid) in
          Hashtbl.replace tbl tid (ev :: prev)
      | _ -> ())
    evs;
  Hashtbl.fold (fun tid evs acc -> (tid, List.rev evs) :: acc) tbl []

let thread_name_tids evs =
  List.filter_map
    (fun ev ->
      match (str_field "ph" ev, str_field "name" ev) with
      | Some "M", Some "thread_name" -> int_field "tid" ev
      | _ -> None)
    evs

(* The structural contract: per tid, B/E balanced (depth never negative,
   zero at the end) and ts non-decreasing in file order. *)
let check_tid_structure (tid, evs) =
  let depth = ref 0 and last_ts = ref neg_infinity in
  List.iter
    (fun ev ->
      let ts =
        match num_field "ts" ev with
        | Some ts -> ts
        | None -> Alcotest.fail (Fmt.str "tid %d: event without ts" tid)
      in
      Alcotest.(check bool)
        (Fmt.str "tid %d: ts non-decreasing" tid)
        true (ts >= !last_ts);
      last_ts := ts;
      match str_field "ph" ev with
      | Some "B" -> incr depth
      | Some "E" ->
          decr depth;
          Alcotest.(check bool)
            (Fmt.str "tid %d: E never precedes its B" tid)
            true (!depth >= 0)
      | Some ("i" | "C") -> ()
      | ph ->
          Alcotest.fail
            (Fmt.str "tid %d: unexpected ph %a" tid
               Fmt.(option string)
               ph))
    evs;
  Alcotest.(check int) (Fmt.str "tid %d: B/E balanced" tid) 0 !depth

let check_trace_structure j =
  let evs = trace_events j in
  List.iter check_tid_structure (events_by_tid evs)

(* --- disabled path --- *)

let test_disabled_noop () =
  Alcotest.(check bool) "off by default" false (Profile.enabled ());
  let r =
    Profile.span "ignored"
      ~args:(fun () -> Alcotest.fail "args thunk forced while disabled")
      (fun () -> 41 + 1)
  in
  Alcotest.(check int) "span passes result through" 42 r;
  Profile.begin_ "ignored";
  Profile.end_ ();
  Profile.instant "ignored";
  Profile.counter "ignored" [ ("v", 1.0) ];
  Alcotest.(check int) "nothing recorded" 0 (Profile.recorded ())

let test_span_propagates_exceptions () =
  Profile.enable ();
  (match Profile.span "boom" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  (* the span closed on the way out: the trace stays balanced *)
  let j = Profile.to_json () in
  Profile.disable ();
  Profile.reset ();
  check_trace_structure j

(* --- multi-domain export --- *)

let test_multi_domain_trace () =
  Profile.enable ();
  let work label =
    Profile.span "outer" ~cat:"test"
      ~args:(fun () -> [ ("who", Json.str label) ])
      (fun () ->
        for i = 1 to 5 do
          Profile.span "inner" (fun () -> ignore (Sys.opaque_identity i))
        done;
        Profile.instant "mark")
  in
  work "main";
  let ds = Array.init 2 (fun i -> Domain.spawn (fun () -> work (Fmt.str "d%d" i))) in
  Array.iter Domain.join ds;
  Profile.disable ();
  let j = Profile.to_json () in
  Profile.reset ();
  (* serialized form is valid JSON and survives a round trip *)
  let j = Json.of_string (Json.to_string_pretty j) in
  let evs = trace_events j in
  let tids = List.sort_uniq compare (thread_name_tids evs) in
  Alcotest.(check bool)
    "one thread row per domain (>= 3)" true
    (List.length tids >= 3);
  Alcotest.(check int)
    "no duplicate thread rows" (List.length tids)
    (List.length (thread_name_tids evs));
  let by_tid = events_by_tid evs in
  (* every event tid has a thread_name row *)
  List.iter
    (fun (tid, _) ->
      Alcotest.(check bool)
        (Fmt.str "tid %d has a thread row" tid)
        true (List.mem tid tids))
    by_tid;
  Alcotest.(check bool)
    "events on >= 3 tids" true
    (List.length by_tid >= 3);
  List.iter check_tid_structure by_tid;
  (* instants made it through with their phase *)
  let instants =
    List.filter (fun ev -> str_field "ph" ev = Some "i") evs
  in
  Alcotest.(check int) "one instant per domain" 3 (List.length instants)

(* --- ring wraparound never tears a span (qcheck) --- *)

(* A script is a list of small commands run against a capacity-8 ring:
   0 = leaf span, 1 = instant, 2 = nested span pair, 3 = counter
   sample.  Any script long enough to wrap must still export balanced,
   monotone events — wraparound drops whole spans, never halves. *)
let run_script script =
  List.iter
    (fun cmd ->
      match cmd mod 4 with
      | 0 -> Profile.span "leaf" (fun () -> ())
      | 1 -> Profile.instant "i"
      | 2 ->
          Profile.span "outer" (fun () ->
              Profile.span "inner" (fun () -> ()))
      | _ -> Profile.counter "c" [ ("v", float_of_int cmd) ])
    script

let prop_wraparound_balanced =
  QCheck2.Test.make ~name:"ring wraparound never tears a span" ~count:100
    QCheck2.Gen.(list_size (int_range 20 60) (int_range 0 3))
    (fun script ->
      Profile.enable ~ring_capacity:8 ();
      run_script script;
      Profile.disable ();
      let j = Profile.to_json () in
      let dropped = Profile.dropped () in
      Profile.reset ();
      (* >= 20 commands into 8 slots: the ring must have wrapped *)
      if dropped = 0 then
        QCheck2.Test.fail_report "expected wraparound drops";
      check_trace_structure j;
      true)

(* --- pool member stats --- *)

let test_pool_member_stats () =
  Pool.with_pool ~domains:2 (fun pool ->
      let out =
        Pool.parallel_map pool
          (fun i ->
            ignore (Sys.opaque_identity (i * i));
            i)
          (Array.init 64 Fun.id)
      in
      Alcotest.(check int) "batch ran" 64 (Array.length out);
      let stats = Pool.stats pool in
      Alcotest.(check int) "one slot per member" 2 (Array.length stats);
      let total =
        Array.fold_left (fun acc s -> acc + s.Pool.jobs_run) 0 stats
      in
      Alcotest.(check int) "every job counted exactly once" 64 total;
      Array.iter
        (fun s ->
          Alcotest.(check bool) "busy_ns non-negative" true (s.Pool.busy_ns >= 0);
          Alcotest.(check bool) "idle_ns non-negative" true (s.Pool.idle_ns >= 0);
          Alcotest.(check bool)
            "steal counters non-negative" true
            (s.Pool.steals >= 0 && s.Pool.steal_failures >= 0))
        stats)

(* --- profiling does not perturb parallel verdicts --- *)

let test_profiled_parallel_verdict_identical () =
  let p = Cas_consensus.protocol ~n:3 () in
  let baseline = Fmt.str "%a" Protocol.pp_report (Protocol.verify p) in
  let profiled =
    Profile.enable ();
    Fun.protect
      ~finally:(fun () ->
        Profile.disable ();
        Profile.reset ())
      (fun () ->
        Pool.with_pool ~domains:2 (fun pool ->
            Fmt.str "%a" Protocol.pp_report (Protocol.verify ~pool p)))
  in
  Alcotest.(check string)
    "parallel + profiling verdict byte-identical to sequential" baseline
    profiled

let suite =
  [
    ( "obs.profile",
      [
        Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
        Alcotest.test_case "exceptions close spans" `Quick
          test_span_propagates_exceptions;
        Alcotest.test_case "multi-domain trace structure" `Quick
          test_multi_domain_trace;
        Alcotest.test_case "pool member stats" `Quick test_pool_member_stats;
        Alcotest.test_case "profiled parallel verdict identical" `Quick
          test_profiled_parallel_verdict_identical;
        QCheck_alcotest.to_alcotest prop_wraparound_balanced;
      ] );
  ]
