(* wfs — command-line front door to the library.

   Subcommands:
     hierarchy   regenerate Figure 1-1 with machine-checked evidence
     verify      exhaustively verify one named consensus protocol
                 (prints a concrete counterexample schedule on failure;
                 --out FILE exports it as a replayable JSON trace)
     replay      re-execute an exported counterexample deterministically
     solve       run the bounded-protocol solvability solver
     census      measure every zoo object's bounded consensus number
     universal   run a universal-construction object exhaustively
     critical    find a critical (bivalent) state of a protocol
     fault       crash-stop stress on real domains (halt k, survivors
                 must complete, recorded history must linearize)
     randomized  check the randomized register-consensus extension
     stats       run a fixed workload and dump the metrics snapshot
     zoo         list the object zoo

   Exit codes, uniformly: 0 = checked and passed, 1 = a violation /
   failed check / exhausted budget, 2 = bad input (unknown protocol,
   malformed counterexample file); cmdliner keeps its own 124 for
   command-line parse errors. *)

open Cmdliner
open Wfs

(* --- shared -j plumbing ---

   [-j 1] (the default) never constructs a pool, so those runs go
   through the sequential engines untouched — byte-identical output to
   a build without the pool.  [-j 0] means "all cores". *)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Verification domains: shard independent verifications (and, \
           for verify, the exploration itself) across $(docv) domains. \
           1 = sequential engines, byte-identical to previous releases; \
           0 = one domain per core.")

(* Returns [None] for invalid [j] so callers can exit 2 uniformly. *)
let with_jobs j f =
  if j < 0 then None
  else
    let domains = if j = 0 then Domain.recommended_domain_count () else j in
    if domains <= 1 then Some (f None)
    else
      Pool.with_pool ~domains (fun pool -> Some (f (Some pool)))

let bad_jobs j =
  Fmt.epr "-j must be >= 0 (got %d)@." j;
  2

(* --- shared --progress / --profile plumbing ---

   [obs_setup] must wrap [with_jobs]: profiling has to be on before the
   pool spawns its workers (each worker announces itself to the trace at
   startup), and the profile is written only after the wrapped run
   returns — by then the pool has been shut down and joined, so every
   domain's ring buffer is quiescent. *)

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Print a heartbeat line to stderr (states, rate, elapsed) at \
           most once per second while the exploration runs.")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Record a span profile of the run and write it to $(docv) as \
           Chrome trace_event JSON (load in ui.perfetto.dev or \
           chrome://tracing).")

let obs_setup ~progress ~profile ~label ?(crashes = 0) f =
  if progress then Obs.Progress.start ~crashes label;
  (match profile with Some _ -> Obs.Profile.enable () | None -> ());
  let finish () =
    if progress then Obs.Progress.finish ();
    match profile with
    | Some path ->
        Obs.Profile.disable ();
        Obs.Profile.write path;
        Fmt.epr "profile written to %s (%d spans%s)@." path
          (Obs.Profile.recorded ())
          (let d = Obs.Profile.dropped () in
           if d = 0 then "" else Fmt.str ", %d dropped" d)
    | None -> ()
  in
  match f () with
  | code ->
      finish ();
      code
  | exception e ->
      finish ();
      raise e

(* --- hierarchy --- *)

let hierarchy_full_arg =
  Arg.(value & flag & info [ "full" ] ~doc:"Include the expensive solver instances (minutes).")

let hierarchy_run ~progress ~profile full j =
  obs_setup ~progress ~profile ~label:"hierarchy" (fun () ->
      match
        with_jobs j (fun pool ->
            let table = Table.generate ?pool ~full () in
            Fmt.pr "%a@." Table.pp table;
            if Table.consistent table then begin
              Fmt.pr "@.All rows consistent with Figure 1-1.@.";
              0
            end
            else begin
              Fmt.pr "@.INCONSISTENT rows found!@.";
              1
            end)
      with
      | Some code -> code
      | None -> bad_jobs j)

let hierarchy_cmd =
  let run full j progress profile = hierarchy_run ~progress ~profile full j in
  Cmd.v
    (Cmd.info "hierarchy" ~doc:"Regenerate the Figure 1-1 hierarchy table")
    Term.(const run $ hierarchy_full_arg $ jobs_arg $ progress_arg $ profile_arg)

(* --- verify --- *)

let verify_key_arg =
  let keys = Registry.keys () in
  let doc = Fmt.str "Protocol key: one of %s." (String.concat ", " keys) in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc)

let verify_n_arg =
  Arg.(value & opt int 2 & info [ "n" ] ~doc:"Number of processes.")

let verify_max_states_arg =
  Arg.(
    value & opt int 2_000_000
    & info [ "max-states" ]
        ~doc:"State budget for the exhaustive exploration.")

let verify_max_depth_arg =
  Arg.(
    value & opt int 10_000
    & info [ "max-depth" ] ~doc:"Depth budget for the exploration DFS.")

let verify_crashes_arg =
  Arg.(
    value & opt int 0
    & info [ "crashes" ]
        ~doc:
          "Crash-stop adversary budget: additionally quantify over every \
           placement of up to this many permanent process halts \
           (wait-freedom's own failure model). 0 checks the crash-free \
           semantics.")

let verify_run ~progress ~profile key n max_states max_depth out crashes j =
  if crashes < 0 || crashes >= n then begin
    Fmt.epr "--crashes must be in [0, n-1] (got %d with n = %d)@." crashes n;
    2
  end
  else
    match (Registry.find key).Registry.build ~n with
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        2
    | None ->
        Fmt.epr "%s does not support n = %d@." key n;
        2
    | Some protocol ->
        obs_setup ~progress ~profile ~crashes
          ~label:(Fmt.str "verify %s n=%d" key n)
          (fun () ->
            match
              with_jobs j (fun pool ->
                  let report =
                    Protocol.verify ~max_states ~max_depth ~crashes ?pool
                      protocol
                  in
                  Fmt.pr "%s (%s), n = %d:@.%a@." protocol.Protocol.name
                    protocol.Protocol.theorem n Protocol.pp_report report;
                  if report.Protocol.truncated then
                    Fmt.pr
                      "exploration truncated by the %s — raise --max-states / \
                       --max-depth for a complete verdict@."
                      (Protocol.truncation_label report.Protocol.truncation);
                  if Protocol.passed report then 0
                  else begin
                    (match
                       Protocol.find_violation ~max_states ~crashes ?pool
                         protocol
                     with
                    | Some v ->
                        Fmt.pr "@.counterexample: %a@." Protocol.pp_violation v;
                        (match out with
                        | Some path ->
                            Obs.Counterexample.save path
                              (Protocol.violation_to_counterexample
                                 ~protocol:key ~n v);
                            Fmt.pr "counterexample written to %s@." path
                        | None -> ())
                    | None ->
                        Fmt.pr
                          "@.no schedule-shaped counterexample (failure is a \
                           cycle, truncation or stuck process)@.");
                    1
                  end)
            with
            | Some code -> code
            | None -> bad_jobs j)

let verify_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "On violation, export the counterexample schedule to $(docv) \
             as replayable JSON (see the replay subcommand).")
  in
  let run key n max_states max_depth out crashes j progress profile =
    verify_run ~progress ~profile key n max_states max_depth out crashes j
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Exhaustively verify a consensus protocol over all schedules, \
          optionally under a crash-stop adversary (--crashes)")
    Term.(
      const run $ verify_key_arg $ verify_n_arg $ verify_max_states_arg
      $ verify_max_depth_arg $ out $ verify_crashes_arg $ jobs_arg
      $ progress_arg $ profile_arg)

(* --- replay --- *)

let replay_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Counterexample JSON written by verify --out.")
  in
  let run file =
    match Obs.Counterexample.load file with
    | exception Sys_error msg ->
        Fmt.epr "%s@." msg;
        2
    | exception Obs.Json.Parse_error msg ->
        Fmt.epr "%s: malformed JSON: %s@." file msg;
        2
    | exception Invalid_argument msg ->
        Fmt.epr "%s: %s@." file msg;
        2
    | ce -> (
        Fmt.pr "%a@." Obs.Counterexample.pp ce;
        match
          (Registry.find ce.Obs.Counterexample.protocol).Registry.build
            ~n:ce.Obs.Counterexample.n
        with
        | exception Invalid_argument msg ->
            Fmt.epr "%s@." msg;
            2
        | None ->
            Fmt.epr "%s does not support n = %d@."
              ce.Obs.Counterexample.protocol ce.Obs.Counterexample.n;
            2
        | Some protocol -> (
            match Protocol.replay_counterexample protocol ce with
            | Ok v ->
                Fmt.pr "@.reproduced deterministically: %a@."
                  Protocol.pp_violation v;
                0
            | Error reason ->
                Fmt.pr "@.NOT reproduced: %s@." reason;
                1
            | exception Invalid_argument msg ->
                Fmt.epr "%s@." msg;
                2))
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute an exported counterexample schedule deterministically \
          through the explorer and check the same violation recurs")
    Term.(const run $ file)

(* --- solve --- *)

let solve_cmd =
  let object_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OBJECT"
          ~doc:"Zoo object name (see the zoo subcommand), e.g. fifo-queue.")
  in
  let n = Arg.(value & opt int 2 & info [ "n" ] ~doc:"Number of processes.") in
  let depth =
    Arg.(value & opt int 2 & info [ "d"; "depth" ] ~doc:"Max operations per process.")
  in
  let budget =
    Arg.(value & opt int 20_000_000 & info [ "budget" ] ~doc:"Search-node budget.")
  in
  let run object_name n depth budget =
    match Zoo.find object_name with
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        2
    | spec ->
        let verdict =
          Solver.solve ~max_nodes:budget (Solver.of_spec ~n ~depth spec)
        in
        Fmt.pr "%s, n = %d, depth = %d:@.%a@." object_name n depth
          Solver.pp_verdict verdict;
        (match verdict with
        | Solver.Solvable _ | Solver.Unsolvable -> 0
        | Solver.Out_of_budget _ -> 1)
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Decide bounded wait-free consensus solvability by strategy \
          synthesis; UNSOLVABLE is a machine-checked impossibility proof")
    Term.(const run $ object_name $ n $ depth $ budget)

(* --- universal --- *)

let universal_cmd =
  let target =
    Arg.(
      value & opt string "fifo-queue"
      & info [ "target" ] ~doc:"Zoo object to implement universally.")
  in
  let variant =
    Arg.(
      value
      & opt (enum [ ("log", `Log); ("truncating", `Truncating) ]) `Log
      & info [ "variant" ] ~doc:"Construction: log or truncating.")
  in
  let run target variant =
    match Zoo.find target with
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        2
    | spec ->
        let menu = Array.of_list spec.Object_spec.menu in
        let scripts =
          [| [ menu.(0); menu.(1 mod Array.length menu) ]; [ menu.(0) ] |]
        in
        (match variant with
        | `Log ->
            let v = Log_universal.verify ~target:spec ~scripts () in
            Fmt.pr
              "log universal construction of %s: ok=%b states=%d terminals=%d@."
              target v.Log_universal.ok v.Log_universal.states
              v.Log_universal.terminals;
            if v.Log_universal.ok then 0 else 1
        | `Truncating ->
            let v = Truncating_universal.verify ~target:spec ~scripts () in
            Fmt.pr
              "truncating universal construction of %s: ok=%b states=%d \
               max-replay=%d@."
              target v.Truncating_universal.ok v.Truncating_universal.states
              v.Truncating_universal.max_replay;
            if v.Truncating_universal.ok then 0 else 1)
  in
  Cmd.v
    (Cmd.info "universal"
       ~doc:"Exhaustively verify a universal construction of a zoo object")
    Term.(const run $ target $ variant)

(* --- census --- *)

let census_budget_arg =
  Arg.(value & opt int 30_000_000
       & info [ "budget" ] ~doc:"Search-node budget per solver run.")

let census_max_states_arg =
  Arg.(
    value & opt (some int) None
    & info [ "max-states" ]
        ~doc:
          "Cap on solver search nodes per run (lower of this and \
           --budget wins).")

let census_max_depth_arg =
  Arg.(
    value & opt (some int) None
    & info [ "max-depth" ]
        ~doc:
          "Cap on operations per process (bounds both the n=2 and n=3 \
           instances; defaults are 2 and 1).")

let census_run ~progress ~profile budget max_states max_depth j =
  let max_nodes =
    match max_states with Some s -> min s budget | None -> budget
  in
  let depth2 = match max_depth with Some d -> min d 2 | None -> 2 in
  let depth3 = match max_depth with Some d -> min d 1 | None -> 1 in
  obs_setup ~progress ~profile ~label:"census" (fun () ->
      match
        with_jobs j (fun pool ->
            Fmt.pr
              "solver-only census (bounded: n=2 within %d op(s), n=3 within %d \
               op(s),@.over initializations reachable in ≤ 2 operations):@.@."
              depth2 depth3;
            let results = Census.run ~depth2 ~depth3 ~max_nodes ?pool () in
            Fmt.pr "%a@." Census.pp results;
            let budget_hit =
              List.exists
                (fun (m : Census.measurement) ->
                  fst m.Census.two_proc = Census.Budget
                  || fst m.Census.three_proc = Census.Budget)
                results
            in
            if budget_hit then begin
              Fmt.pr
                "@.some verdicts hit the node budget — raise --budget / \
                 --max-states for a conclusive census@.";
              1
            end
            else 0)
      with
      | Some code -> code
      | None -> bad_jobs j)

let census_cmd =
  let run budget max_states max_depth j progress profile =
    census_run ~progress ~profile budget max_states max_depth j
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:
         "Measure every zoo object's bounded consensus number with the \
          solver alone")
    Term.(
      const run $ census_budget_arg $ census_max_states_arg
      $ census_max_depth_arg $ jobs_arg $ progress_arg $ profile_arg)

(* --- critical --- *)

let critical_cmd =
  let key =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"PROTOCOL" ~doc:"Registry protocol key.")
  in
  let n = Arg.(value & opt int 2 & info [ "n" ] ~doc:"Number of processes.") in
  let crashes =
    Arg.(
      value & opt int 0
      & info [ "crashes" ]
          ~doc:
            "Crash-stop adversary budget for the valency analysis: crash \
             successors count as branches, so a state is critical only if \
             even the adversary's halts commit the outcome.")
  in
  let run key n crashes =
    match (Registry.find key).Registry.build ~n with
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        2
    | None ->
        Fmt.epr "%s does not support n = %d@." key n;
        2
    | Some protocol -> (
        match Valency.find_critical ~crashes protocol.Protocol.config with
        | Some crit ->
            Fmt.pr
              "critical state of %s: bivalent, every successor univalent@."
              protocol.Protocol.name;
            List.iter
              (fun (pid, _, v) ->
                Fmt.pr "  P%d moves next  =>  outcome pinned to %a@." pid
                  Valency.pp_valency v)
              crit.Valency.branches;
            0
        | None ->
            Fmt.pr "no critical state reachable (protocol univalent?)@.";
            1)
  in
  Cmd.v
    (Cmd.info "critical"
       ~doc:
         "Find a critical (bivalent, decision-pending) state of a protocol — \
          the engine of the paper's impossibility proofs")
    Term.(const run $ key $ n $ crashes)

(* --- fault --- *)

let fault_cmd =
  let n =
    Arg.(value & opt int 4 & info [ "n" ] ~doc:"Number of domains.")
  in
  let halts =
    Arg.(
      value & opt int 1
      & info [ "halts" ]
          ~doc:"Domains to halt mid-operation (must be < n).")
  in
  let ops =
    Arg.(
      value & opt int 7 & info [ "ops" ] ~doc:"Operations per domain.")
  in
  let run n halts ops =
    match Runtime.Fault.stress_queue ~ops_per_proc:ops ~n ~halts () with
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        2
    | s ->
        Fmt.pr "%a@." Runtime.Fault.pp_stress s;
        if Runtime.Fault.stress_passed s then 0 else 1
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:
         "Crash-stop stress on real domains: halt some domains \
          mid-operation against the wait-free universal queue and check \
          the survivors complete and the recorded history (crashed \
          operations left pending) still linearizes")
    Term.(const run $ n $ halts $ ops)

(* --- randomized --- *)

let randomized_cmd =
  let flips =
    Arg.(value & opt int 3 & info [ "flips" ]
           ~doc:"Adversarial coin-sequence length for the exhaustive check.")
  in
  let run flips =
    Fmt.pr
      "randomized 2-process consensus from registers (Theorem 2 escapes@.\
       via coin flips — §5's open problem, after Abrahamson):@.@.";
    let v = Randomized.verify_all_coins ~flips () in
    Fmt.pr
      "exhaustive safety: ok=%b over %d configurations (%d joint states)@."
      v.Randomized.ok v.Randomized.configurations v.Randomized.states;
    Fmt.pr "aborts possible with only %d coins: %b@." flips
      v.Randomized.aborts_possible;
    if v.Randomized.ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "randomized"
       ~doc:"Exhaustively check the randomized register consensus extension")
    Term.(const run $ flips)

(* --- stats --- *)

let stats_cmd =
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Also write a JSONL trace of the workload to $(docv).")
  in
  let run trace_file =
    (match trace_file with
    | Some path -> Obs.Trace.set_sink (Obs.Trace.to_file path)
    | None -> ());
    Obs.Metrics.reset ();
    Obs.Metrics.with_hot (fun () ->
        (* a fixed workload touching every instrumented layer *)
        (* 1. simulator: CAS consensus at n = 3, all schedules *)
        (match (Registry.find "cas").Registry.build ~n:3 with
        | Some p -> ignore (Protocol.verify p)
        | None -> ());
        (* 2. valency: critical-state search on the Theorem 4 election *)
        (match (Registry.find "test-and-set").Registry.build ~n:2 with
        | Some p -> ignore (Valency.find_critical p.Protocol.config)
        | None -> ());
        (* 3. deliberately truncated explorations, one per budget, for
           the truncation accounting (cas at n = 4 has 217 states and
           depth > 4) *)
        (match (Registry.find "cas").Registry.build ~n:4 with
        | Some p ->
            ignore (Explorer.explore ~max_states:100 p.Protocol.config);
            ignore (Explorer.explore ~max_depth:4 p.Protocol.config)
        | None -> ());
        (* 4. runtime: universal queue under two domains, fetch-and-cons,
           and a recorder *)
        let module QU = Runtime.Universal.Lock_free (Runtime.Seq_objects.Queue_of_int) in
        let open Runtime.Seq_objects.Queue_of_int in
        let qu = QU.create () in
        ignore
          (Runtime.Primitives.run_domains 2 (fun pid ->
               for i = 0 to 4_999 do
                 ignore (QU.apply qu (Enq ((pid * 5_000) + i)));
                 ignore (QU.apply qu Deq)
               done));
        let module QW = Runtime.Universal.Wait_free (Runtime.Seq_objects.Queue_of_int) in
        let qw = QW.create ~n:2 in
        ignore
          (Runtime.Primitives.run_domains 2 (fun pid ->
               for i = 0 to 499 do
                 ignore (QW.apply qw ~pid (Enq i));
                 ignore (QW.apply qw ~pid Deq)
               done));
        let fac = Runtime.Fetch_and_cons.Cas_based.make () in
        for i = 0 to 9_999 do
          ignore (Runtime.Fetch_and_cons.Cas_based.fetch_and_cons fac i)
        done;
        let rounds =
          Runtime.Fetch_and_cons.Rounds.make ~n:2 ~equal:Int.equal
        in
        let h = Runtime.Fetch_and_cons.Rounds.handle rounds ~pid:0 in
        for i = 0 to 99 do
          ignore (Runtime.Fetch_and_cons.Rounds.fetch_and_cons h i)
        done;
        let recorder = Runtime.Recorder.create ~capacity:1_024 in
        for pid = 0 to 1 do
          for i = 0 to 99 do
            ignore
              (Runtime.Recorder.around recorder ~pid ~obj:"q"
                 ~op:(Queues.enq (Value.int i))
                 ~encode_res:(fun () -> Value.unit)
                 (fun () -> ()))
          done
        done);
    Obs.Trace.close ();
    Fmt.pr "%s@." (Obs.Metrics.snapshot_string ());
    0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a fixed workload through the instrumented simulator and \
          runtime, then dump the metrics snapshot as JSON")
    Term.(const run $ trace_file)

(* --- zoo --- *)

let zoo_cmd =
  let run () =
    List.iter
      (fun spec ->
        Fmt.pr "%-22s %d menu operations@." spec.Object_spec.name
          (List.length spec.Object_spec.menu))
      (Zoo.all ());
    0
  in
  Cmd.v (Cmd.info "zoo" ~doc:"List the object zoo") Term.(const run $ const ())

(* --- profile ---

   [wfs profile CMD ... --out prof.json] = run CMD with the span
   profiler on and write the trace to --out.  Equivalent to the
   subcommand's own --profile flag, packaged as a dedicated group so
   profiling runs read naturally.  Note: under [profile verify], --out
   names the trace file, so counterexample export is only available via
   the plain [verify --out ... --profile ...] spelling. *)

let profile_out_arg =
  Arg.(
    value & opt string "prof.json"
    & info [ "out" ] ~docv:"FILE"
        ~doc:
          "Write the Chrome trace_event JSON to $(docv) (load in \
           ui.perfetto.dev or chrome://tracing).")

let profile_cmd =
  let verify =
    let run key n max_states max_depth crashes j progress out =
      verify_run ~progress ~profile:(Some out) key n max_states max_depth None
        crashes j
    in
    Cmd.v
      (Cmd.info "verify" ~doc:"Profile an exhaustive protocol verification")
      Term.(
        const run $ verify_key_arg $ verify_n_arg $ verify_max_states_arg
        $ verify_max_depth_arg $ verify_crashes_arg $ jobs_arg $ progress_arg
        $ profile_out_arg)
  in
  let census =
    let run budget max_states max_depth j progress out =
      census_run ~progress ~profile:(Some out) budget max_states max_depth j
    in
    Cmd.v
      (Cmd.info "census" ~doc:"Profile the solver census over the zoo")
      Term.(
        const run $ census_budget_arg $ census_max_states_arg
        $ census_max_depth_arg $ jobs_arg $ progress_arg $ profile_out_arg)
  in
  let hierarchy =
    let run full j progress out =
      hierarchy_run ~progress ~profile:(Some out) full j
    in
    Cmd.v
      (Cmd.info "hierarchy"
         ~doc:"Profile the Figure 1-1 hierarchy table generation")
      Term.(
        const run $ hierarchy_full_arg $ jobs_arg $ progress_arg
        $ profile_out_arg)
  in
  Cmd.group
    (Cmd.info "profile"
       ~doc:
         "Run a subcommand under the per-domain span profiler and write a \
          Chrome trace_event JSON timeline (pool jobs, steals, idle waits, \
          exploration phases, solver runs — one thread row per domain)")
    [ verify; census; hierarchy ]

let main =
  Cmd.group
    (Cmd.info "wfs" ~version:"1.0.0"
       ~doc:
         "Wait-free synchronization: the consensus hierarchy and universal \
          constructions of Herlihy (PODC 1988), executable")
    [
      hierarchy_cmd; verify_cmd; replay_cmd; solve_cmd; universal_cmd;
      census_cmd; critical_cmd; fault_cmd;
      randomized_cmd; stats_cmd; zoo_cmd; profile_cmd;
    ]

let () = exit (Cmd.eval' main)
