(* wfs — command-line front door to the library.

   Subcommands:
     hierarchy   regenerate Figure 1-1 with machine-checked evidence
     verify      exhaustively verify one named consensus protocol
                 (prints a concrete counterexample schedule on failure)
     solve       run the bounded-protocol solvability solver
     census      measure every zoo object's bounded consensus number
     universal   run a universal-construction object exhaustively
     critical    find a critical (bivalent) state of a protocol
     randomized  check the randomized register-consensus extension
     zoo         list the object zoo *)

open Cmdliner
open Wfs

(* --- hierarchy --- *)

let hierarchy_cmd =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Include the expensive solver instances (minutes).")
  in
  let run full =
    let table = Table.generate ~full () in
    Fmt.pr "%a@." Table.pp table;
    if Table.consistent table then begin
      Fmt.pr "@.All rows consistent with Figure 1-1.@.";
      0
    end
    else begin
      Fmt.pr "@.INCONSISTENT rows found!@.";
      1
    end
  in
  Cmd.v
    (Cmd.info "hierarchy" ~doc:"Regenerate the Figure 1-1 hierarchy table")
    Term.(const run $ full)

(* --- verify --- *)

let verify_cmd =
  let key =
    let keys = Registry.keys () in
    let doc = Fmt.str "Protocol key: one of %s." (String.concat ", " keys) in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc)
  in
  let n =
    Arg.(value & opt int 2 & info [ "n" ] ~doc:"Number of processes.")
  in
  let run key n =
    match (Registry.find key).Registry.build ~n with
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        2
    | None ->
        Fmt.epr "%s does not support n = %d@." key n;
        2
    | Some protocol ->
        let report = Protocol.verify protocol in
        Fmt.pr "%s (%s), n = %d:@.%a@." protocol.Protocol.name
          protocol.Protocol.theorem n Protocol.pp_report report;
        if Protocol.passed report then 0
        else begin
          (match Protocol.find_violation protocol with
          | Some v -> Fmt.pr "@.counterexample: %a@." Protocol.pp_violation v
          | None -> ());
          1
        end
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Exhaustively verify a consensus protocol over all schedules")
    Term.(const run $ key $ n)

(* --- solve --- *)

let solve_cmd =
  let object_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OBJECT"
          ~doc:"Zoo object name (see the zoo subcommand), e.g. fifo-queue.")
  in
  let n = Arg.(value & opt int 2 & info [ "n" ] ~doc:"Number of processes.") in
  let depth =
    Arg.(value & opt int 2 & info [ "d"; "depth" ] ~doc:"Max operations per process.")
  in
  let budget =
    Arg.(value & opt int 20_000_000 & info [ "budget" ] ~doc:"Search-node budget.")
  in
  let run object_name n depth budget =
    match Zoo.find object_name with
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        2
    | spec ->
        let verdict =
          Solver.solve ~max_nodes:budget (Solver.of_spec ~n ~depth spec)
        in
        Fmt.pr "%s, n = %d, depth = %d:@.%a@." object_name n depth
          Solver.pp_verdict verdict;
        (match verdict with
        | Solver.Solvable _ | Solver.Unsolvable -> 0
        | Solver.Out_of_budget _ -> 1)
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Decide bounded wait-free consensus solvability by strategy \
          synthesis; UNSOLVABLE is a machine-checked impossibility proof")
    Term.(const run $ object_name $ n $ depth $ budget)

(* --- universal --- *)

let universal_cmd =
  let target =
    Arg.(
      value & opt string "fifo-queue"
      & info [ "target" ] ~doc:"Zoo object to implement universally.")
  in
  let variant =
    Arg.(
      value
      & opt (enum [ ("log", `Log); ("truncating", `Truncating) ]) `Log
      & info [ "variant" ] ~doc:"Construction: log or truncating.")
  in
  let run target variant =
    match Zoo.find target with
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        2
    | spec ->
        let menu = Array.of_list spec.Object_spec.menu in
        let scripts =
          [| [ menu.(0); menu.(1 mod Array.length menu) ]; [ menu.(0) ] |]
        in
        (match variant with
        | `Log ->
            let v = Log_universal.verify ~target:spec ~scripts () in
            Fmt.pr
              "log universal construction of %s: ok=%b states=%d terminals=%d@."
              target v.Log_universal.ok v.Log_universal.states
              v.Log_universal.terminals;
            if v.Log_universal.ok then 0 else 1
        | `Truncating ->
            let v = Truncating_universal.verify ~target:spec ~scripts () in
            Fmt.pr
              "truncating universal construction of %s: ok=%b states=%d \
               max-replay=%d@."
              target v.Truncating_universal.ok v.Truncating_universal.states
              v.Truncating_universal.max_replay;
            if v.Truncating_universal.ok then 0 else 1)
  in
  Cmd.v
    (Cmd.info "universal"
       ~doc:"Exhaustively verify a universal construction of a zoo object")
    Term.(const run $ target $ variant)

(* --- census --- *)

let census_cmd =
  let budget =
    Arg.(value & opt int 30_000_000
         & info [ "budget" ] ~doc:"Search-node budget per solver run.")
  in
  let run budget =
    Fmt.pr
      "solver-only census (bounded: n=2 within 2 ops, n=3 within 1 op,@.\
       over initializations reachable in ≤ 2 operations):@.@.";
    let results = Census.run ~max_nodes:budget () in
    Fmt.pr "%a@." Census.pp results;
    0
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:
         "Measure every zoo object's bounded consensus number with the \
          solver alone")
    Term.(const run $ budget)

(* --- critical --- *)

let critical_cmd =
  let key =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"PROTOCOL" ~doc:"Registry protocol key.")
  in
  let n = Arg.(value & opt int 2 & info [ "n" ] ~doc:"Number of processes.") in
  let run key n =
    match (Registry.find key).Registry.build ~n with
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        2
    | None ->
        Fmt.epr "%s does not support n = %d@." key n;
        2
    | Some protocol -> (
        match Valency.find_critical protocol.Protocol.config with
        | Some crit ->
            Fmt.pr
              "critical state of %s: bivalent, every successor univalent@."
              protocol.Protocol.name;
            List.iter
              (fun (pid, _, v) ->
                Fmt.pr "  P%d moves next  =>  outcome pinned to %a@." pid
                  Valency.pp_valency v)
              crit.Valency.branches;
            0
        | None ->
            Fmt.pr "no critical state reachable (protocol univalent?)@.";
            1)
  in
  Cmd.v
    (Cmd.info "critical"
       ~doc:
         "Find a critical (bivalent, decision-pending) state of a protocol — \
          the engine of the paper's impossibility proofs")
    Term.(const run $ key $ n)

(* --- randomized --- *)

let randomized_cmd =
  let flips =
    Arg.(value & opt int 3 & info [ "flips" ]
           ~doc:"Adversarial coin-sequence length for the exhaustive check.")
  in
  let run flips =
    Fmt.pr
      "randomized 2-process consensus from registers (Theorem 2 escapes@.\
       via coin flips — §5's open problem, after Abrahamson):@.@.";
    let v = Randomized.verify_all_coins ~flips () in
    Fmt.pr
      "exhaustive safety: ok=%b over %d configurations (%d joint states)@."
      v.Randomized.ok v.Randomized.configurations v.Randomized.states;
    Fmt.pr "aborts possible with only %d coins: %b@." flips
      v.Randomized.aborts_possible;
    if v.Randomized.ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "randomized"
       ~doc:"Exhaustively check the randomized register consensus extension")
    Term.(const run $ flips)

(* --- zoo --- *)

let zoo_cmd =
  let run () =
    List.iter
      (fun spec ->
        Fmt.pr "%-22s %d menu operations@." spec.Object_spec.name
          (List.length spec.Object_spec.menu))
      (Zoo.all ());
    0
  in
  Cmd.v (Cmd.info "zoo" ~doc:"List the object zoo") Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "wfs" ~version:"1.0.0"
       ~doc:
         "Wait-free synchronization: the consensus hierarchy and universal \
          constructions of Herlihy (PODC 1988), executable")
    [
      hierarchy_cmd; verify_cmd; solve_cmd; universal_cmd; census_cmd;
      critical_cmd;
      randomized_cmd; zoo_cmd;
    ]

let () = exit (Cmd.eval' main)
