(* wfs — command-line front door to the library.

   Subcommands:
     hierarchy   regenerate Figure 1-1 with machine-checked evidence
     verify      exhaustively verify one named consensus protocol
                 (prints a concrete counterexample schedule on failure;
                 --out FILE exports it as a replayable JSON trace)
     replay      re-execute an exported counterexample deterministically
     solve       run the bounded-protocol solvability solver
     census      measure every zoo object's bounded consensus number
     universal   run a universal-construction object exhaustively
     critical    find a critical (bivalent) state of a protocol
     fault       crash-stop stress on real domains (halt k, survivors
                 must complete, recorded history must linearize)
     load        closed-loop load generator for the universal object
                 service (differential / linearizability checked)
     serve       hold the universal object service under sustained
                 load, exporting live metrics for wfs top
     randomized  check the randomized register-consensus extension
     stats       run a fixed workload and dump the metrics snapshot
                 (--watch N live-renders a humanized summary meanwhile)
     top         live terminal view of a concurrent run's telemetry,
                 polling the OpenMetrics file or HTTP endpoint that
                 --metrics-out / --metrics-port publish
     zoo         list the object zoo

   Exit codes, uniformly: 0 = checked and passed, 1 = a violation /
   failed check / exhausted budget, 2 = bad input (unknown protocol,
   malformed counterexample file); cmdliner keeps its own 124 for
   command-line parse errors. *)

open Cmdliner
open Wfs

(* --- shared -j plumbing ---

   [-j 1] (the default) never constructs a pool, so those runs go
   through the sequential engines untouched — byte-identical output to
   a build without the pool.  [-j 0] means "all cores". *)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Verification domains: shard independent verifications (and, \
           for verify, the exploration itself) across $(docv) domains. \
           1 = sequential engines, byte-identical to previous releases; \
           0 = one domain per core.")

let no_por_arg =
  Arg.(
    value & flag
    & info [ "no-por" ]
        ~doc:
          "Disable the sleep-set partial-order reductions in the \
           explorer and solver. Verdicts, tables and counterexamples \
           are identical either way; with the flag the unreduced \
           searches of previous releases are reproduced byte for byte \
           (differential runs, search-size comparisons).")

let no_tt_arg =
  Arg.(
    value & flag
    & info [ "no-tt" ]
        ~doc:
          "Disable the solver's transposition table and no-good \
           learning (footprint-validated subgame caching and \
           backjumping). Verdicts and synthesized strategies are \
           identical either way; together with $(b,--no-por) the \
           historical search is reproduced node for node \
           (differential runs, search-size comparisons).")

(* Returns [None] for invalid [j] so callers can exit 2 uniformly. *)
let with_jobs j f =
  if j < 0 then None
  else
    let domains = if j = 0 then Domain.recommended_domain_count () else j in
    if domains <= 1 then Some (f None)
    else
      Pool.with_pool ~domains (fun pool -> Some (f (Some pool)))

let bad_jobs j =
  Fmt.epr "-j must be >= 0 (got %d)@." j;
  2

(* --- shared --progress / --profile plumbing ---

   [obs_setup] must wrap [with_jobs]: profiling has to be on before the
   pool spawns its workers (each worker announces itself to the trace at
   startup), and the profile is written only after the wrapped run
   returns — by then the pool has been shut down and joined, so every
   domain's ring buffer is quiescent. *)

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Print a heartbeat line to stderr (states, rate, elapsed) at \
           most once per second while the exploration runs.")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Record a span profile of the run and write it to $(docv) as \
           Chrome trace_event JSON (load in ui.perfetto.dev or \
           chrome://tracing).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Sample the metrics registry once per second and atomically \
           rewrite $(docv) with the OpenMetrics text exposition — a live \
           scrape target for wfs top and CI.")

let metrics_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "metrics-port" ] ~docv:"PORT"
        ~doc:
          "Serve the latest metrics snapshot as OpenMetrics text over \
           HTTP on localhost:$(docv) (GET /metrics) while the run is in \
           flight.")

let obs_setup ~progress ~profile ?metrics_out ?metrics_port ~label
    ?(crashes = 0) f =
  (* the sampler starts first so its ring already has a baseline when
     the pool spawns, and stops last so the final file-sink rewrite
     carries the complete end-of-run values *)
  let sampler =
    match (metrics_out, metrics_port) with
    | None, None -> Ok None
    | out_file, port -> (
        try Ok (Some (Obs.Sampler.start ?out_file ?port ()))
        with Unix.Unix_error (e, _, _) ->
          Error (Unix.error_message e))
  in
  match sampler with
  | Error msg ->
      Fmt.epr "cannot start metrics sampler: %s@." msg;
      2
  | Ok sampler -> (
      if progress then Obs.Progress.start ~crashes label;
      (match profile with Some _ -> Obs.Profile.enable () | None -> ());
      (* a live sampler implies the hot-path counters should record:
         without this the runtime's gated universal_rt/service metrics
         export as zeros *)
      let was_hot = Obs.Metrics.hot () in
      if sampler <> None then Obs.Metrics.set_hot true;
      let finish () =
        Obs.Metrics.set_hot was_hot;
        if progress then Obs.Progress.finish ();
        (match profile with
        | Some path ->
            Obs.Profile.disable ();
            Obs.Profile.write path;
            Fmt.epr "profile written to %s (%d spans%s)@." path
              (Obs.Profile.recorded ())
              (let d = Obs.Profile.dropped () in
               if d = 0 then "" else Fmt.str ", %d dropped" d)
        | None -> ());
        match sampler with
        | Some s ->
            Obs.Sampler.stop s;
            Option.iter
              (fun path -> Fmt.epr "metrics written to %s@." path)
              metrics_out
        | None -> ()
      in
      match f () with
      | code ->
          finish ();
          code
      | exception e ->
          finish ();
          raise e)

(* --- hierarchy --- *)

let hierarchy_full_arg =
  Arg.(value & flag & info [ "full" ] ~doc:"Include the expensive solver instances (minutes).")

let hierarchy_run ~progress ~profile ?metrics_out ?metrics_port full no_por
    no_tt j =
  obs_setup ~progress ~profile ?metrics_out ?metrics_port ~label:"hierarchy"
    (fun () ->
      match
        with_jobs j (fun pool ->
            let table =
              Table.generate ?pool ~full ~por:(not no_por) ~tt:(not no_tt) ()
            in
            Fmt.pr "%a@." Table.pp table;
            if Table.consistent table then begin
              Fmt.pr "@.All rows consistent with Figure 1-1.@.";
              0
            end
            else begin
              Fmt.pr "@.INCONSISTENT rows found!@.";
              1
            end)
      with
      | Some code -> code
      | None -> bad_jobs j)

let hierarchy_cmd =
  let run full no_por no_tt j progress profile metrics_out metrics_port =
    hierarchy_run ~progress ~profile ?metrics_out ?metrics_port full no_por
      no_tt j
  in
  Cmd.v
    (Cmd.info "hierarchy" ~doc:"Regenerate the Figure 1-1 hierarchy table")
    Term.(
      const run $ hierarchy_full_arg $ no_por_arg $ no_tt_arg $ jobs_arg
      $ progress_arg $ profile_arg $ metrics_out_arg $ metrics_port_arg)

(* --- verify --- *)

let verify_key_arg =
  let keys = Registry.keys () in
  let doc = Fmt.str "Protocol key: one of %s." (String.concat ", " keys) in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc)

let verify_n_arg =
  Arg.(value & opt int 2 & info [ "n" ] ~doc:"Number of processes.")

let verify_max_states_arg =
  Arg.(
    value & opt int 2_000_000
    & info [ "max-states" ]
        ~doc:"State budget for the exhaustive exploration.")

let verify_max_depth_arg =
  Arg.(
    value & opt int 10_000
    & info [ "max-depth" ] ~doc:"Depth budget for the exploration DFS.")

let verify_crashes_arg =
  Arg.(
    value & opt int 0
    & info [ "crashes" ]
        ~doc:
          "Crash-stop adversary budget: additionally quantify over every \
           placement of up to this many permanent process halts \
           (wait-freedom's own failure model). 0 checks the crash-free \
           semantics.")

let verify_run ~progress ~profile ?metrics_out ?metrics_port key n max_states
    max_depth out crashes no_por j =
  if crashes < 0 || crashes >= n then begin
    Fmt.epr "--crashes must be in [0, n-1] (got %d with n = %d)@." crashes n;
    2
  end
  else
    match (Registry.find key).Registry.build ~n with
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        2
    | None ->
        Fmt.epr "%s does not support n = %d@." key n;
        2
    | Some protocol ->
        obs_setup ~progress ~profile ?metrics_out ?metrics_port ~crashes
          ~label:(Fmt.str "verify %s n=%d" key n)
          (fun () ->
            match
              with_jobs j (fun pool ->
                  let report =
                    Protocol.verify ~max_states ~max_depth ~crashes
                      ~por:(not no_por) ?pool protocol
                  in
                  Fmt.pr "%s (%s), n = %d:@.%a@." protocol.Protocol.name
                    protocol.Protocol.theorem n Protocol.pp_report report;
                  if report.Protocol.truncated then
                    Fmt.pr
                      "exploration truncated by the %s — raise --max-states / \
                       --max-depth for a complete verdict@."
                      (Protocol.truncation_label report.Protocol.truncation);
                  if Protocol.passed report then 0
                  else begin
                    (match
                       Protocol.find_violation ~max_states ~crashes ?pool
                         protocol
                     with
                    | Some v ->
                        Fmt.pr "@.counterexample: %a@." Protocol.pp_violation v;
                        (match out with
                        | Some path ->
                            Obs.Counterexample.save path
                              (Protocol.violation_to_counterexample
                                 ~protocol:key ~n v);
                            Fmt.pr "counterexample written to %s@." path
                        | None -> ())
                    | None ->
                        Fmt.pr
                          "@.no schedule-shaped counterexample (failure is a \
                           cycle, truncation or stuck process)@.");
                    1
                  end)
            with
            | Some code -> code
            | None -> bad_jobs j)

let verify_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "On violation, export the counterexample schedule to $(docv) \
             as replayable JSON (see the replay subcommand).")
  in
  let run key n max_states max_depth out crashes no_por j progress profile
      metrics_out metrics_port =
    verify_run ~progress ~profile ?metrics_out ?metrics_port key n max_states
      max_depth out crashes no_por j
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Exhaustively verify a consensus protocol over all schedules, \
          optionally under a crash-stop adversary (--crashes)")
    Term.(
      const run $ verify_key_arg $ verify_n_arg $ verify_max_states_arg
      $ verify_max_depth_arg $ out $ verify_crashes_arg $ no_por_arg
      $ jobs_arg $ progress_arg $ profile_arg $ metrics_out_arg
      $ metrics_port_arg)

(* --- replay --- *)

let replay_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Counterexample JSON written by verify --out.")
  in
  let run file =
    match Obs.Counterexample.load file with
    | exception Sys_error msg ->
        Fmt.epr "%s@." msg;
        2
    | exception Obs.Json.Parse_error msg ->
        Fmt.epr "%s: malformed JSON: %s@." file msg;
        2
    | exception Invalid_argument msg ->
        Fmt.epr "%s: %s@." file msg;
        2
    | ce -> (
        Fmt.pr "%a@." Obs.Counterexample.pp ce;
        match
          (Registry.find ce.Obs.Counterexample.protocol).Registry.build
            ~n:ce.Obs.Counterexample.n
        with
        | exception Invalid_argument msg ->
            Fmt.epr "%s@." msg;
            2
        | None ->
            Fmt.epr "%s does not support n = %d@."
              ce.Obs.Counterexample.protocol ce.Obs.Counterexample.n;
            2
        | Some protocol -> (
            match Protocol.replay_counterexample protocol ce with
            | Ok v ->
                Fmt.pr "@.reproduced deterministically: %a@."
                  Protocol.pp_violation v;
                0
            | Error reason ->
                Fmt.pr "@.NOT reproduced: %s@." reason;
                1
            | exception Invalid_argument msg ->
                Fmt.epr "%s@." msg;
                2))
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute an exported counterexample schedule deterministically \
          through the explorer and check the same violation recurs")
    Term.(const run $ file)

(* --- solve --- *)

let solve_cmd =
  let object_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OBJECT"
          ~doc:"Zoo object name (see the zoo subcommand), e.g. fifo-queue.")
  in
  let n = Arg.(value & opt int 2 & info [ "n" ] ~doc:"Number of processes.") in
  let depth =
    Arg.(value & opt int 2 & info [ "d"; "depth" ] ~doc:"Max operations per process.")
  in
  let budget =
    Arg.(value & opt int 20_000_000 & info [ "budget" ] ~doc:"Search-node budget.")
  in
  let critical =
    Arg.(
      value & flag
      & info [ "critical-depth" ]
          ~doc:
            "Instead of one verdict at --depth, binary-search the least \
             step bound (up to --depth) at which consensus becomes \
             solvable from some candidate initialization, sharing one \
             transposition context across the probes.")
  in
  let run object_name n depth budget no_por no_tt critical =
    match Zoo.find object_name with
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        2
    | spec ->
        if critical then begin
          let c =
            Census.critical_depth ~max_nodes:budget ~por:(not no_por)
              ~tt:(not no_tt) ~n ~max_depth:depth spec
          in
          Fmt.pr "%s, n = %d, max depth = %d:@.%a@." object_name n depth
            Census.pp_critical c;
          match c.Census.critical with Some _ -> 0 | None -> 1
        end
        else
          let verdict =
            Solver.solve ~max_nodes:budget ~por:(not no_por) ~tt:(not no_tt)
              (Solver.of_spec ~n ~depth spec)
          in
          Fmt.pr "%s, n = %d, depth = %d:@.%a@." object_name n depth
            Solver.pp_verdict verdict;
          (match verdict with
          | Solver.Solvable _ | Solver.Unsolvable -> 0
          | Solver.Out_of_budget _ -> 1)
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Decide bounded wait-free consensus solvability by strategy \
          synthesis; UNSOLVABLE is a machine-checked impossibility proof")
    Term.(
      const run $ object_name $ n $ depth $ budget $ no_por_arg $ no_tt_arg
      $ critical)

(* --- universal --- *)

let universal_cmd =
  let target =
    Arg.(
      value & opt string "fifo-queue"
      & info [ "target" ] ~doc:"Zoo object to implement universally.")
  in
  let variant =
    Arg.(
      value
      & opt (enum [ ("log", `Log); ("truncating", `Truncating) ]) `Log
      & info [ "variant" ] ~doc:"Construction: log or truncating.")
  in
  let run target variant =
    match Zoo.find target with
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        2
    | spec ->
        let menu = Array.of_list spec.Object_spec.menu in
        let scripts =
          [| [ menu.(0); menu.(1 mod Array.length menu) ]; [ menu.(0) ] |]
        in
        (match variant with
        | `Log ->
            let v = Log_universal.verify ~target:spec ~scripts () in
            Fmt.pr
              "log universal construction of %s: ok=%b states=%d terminals=%d@."
              target v.Log_universal.ok v.Log_universal.states
              v.Log_universal.terminals;
            if v.Log_universal.ok then 0 else 1
        | `Truncating ->
            let v = Truncating_universal.verify ~target:spec ~scripts () in
            Fmt.pr
              "truncating universal construction of %s: ok=%b states=%d \
               max-replay=%d@."
              target v.Truncating_universal.ok v.Truncating_universal.states
              v.Truncating_universal.max_replay;
            if v.Truncating_universal.ok then 0 else 1)
  in
  Cmd.v
    (Cmd.info "universal"
       ~doc:"Exhaustively verify a universal construction of a zoo object")
    Term.(const run $ target $ variant)

(* --- census --- *)

let census_budget_arg =
  Arg.(value & opt int 30_000_000
       & info [ "budget" ] ~doc:"Search-node budget per solver run.")

let census_max_states_arg =
  Arg.(
    value & opt (some int) None
    & info [ "max-states" ]
        ~doc:
          "Cap on solver search nodes per run (lower of this and \
           --budget wins).")

let census_max_depth_arg =
  Arg.(
    value & opt (some int) None
    & info [ "max-depth" ]
        ~doc:
          "Cap on operations per process (bounds both the n=2 and n=3 \
           instances; defaults are 2 and 1).")

let census_run ~progress ~profile ?metrics_out ?metrics_port budget max_states
    max_depth no_por no_tt j =
  let max_nodes =
    match max_states with Some s -> min s budget | None -> budget
  in
  let depth2 = match max_depth with Some d -> min d 2 | None -> 2 in
  let depth3 = match max_depth with Some d -> min d 1 | None -> 1 in
  obs_setup ~progress ~profile ?metrics_out ?metrics_port ~label:"census"
    (fun () ->
      match
        with_jobs j (fun pool ->
            Fmt.pr
              "solver-only census (bounded: n=2 within %d op(s), n=3 within %d \
               op(s),@.over initializations reachable in ≤ 2 operations):@.@."
              depth2 depth3;
            let results =
              Census.run ~depth2 ~depth3 ~max_nodes ~por:(not no_por)
                ~tt:(not no_tt) ?pool ()
            in
            Fmt.pr "%a@." Census.pp results;
            let budget_hit =
              List.exists
                (fun (m : Census.measurement) ->
                  fst m.Census.two_proc = Census.Budget
                  || fst m.Census.three_proc = Census.Budget)
                results
            in
            if budget_hit then begin
              Fmt.pr
                "@.some verdicts hit the node budget — raise --budget / \
                 --max-states for a conclusive census@.";
              1
            end
            else 0)
      with
      | Some code -> code
      | None -> bad_jobs j)

let census_cmd =
  let run budget max_states max_depth no_por no_tt j progress profile
      metrics_out metrics_port =
    census_run ~progress ~profile ?metrics_out ?metrics_port budget max_states
      max_depth no_por no_tt j
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:
         "Measure every zoo object's bounded consensus number with the \
          solver alone")
    Term.(
      const run $ census_budget_arg $ census_max_states_arg
      $ census_max_depth_arg $ no_por_arg $ no_tt_arg $ jobs_arg
      $ progress_arg $ profile_arg $ metrics_out_arg $ metrics_port_arg)

(* --- critical --- *)

let critical_cmd =
  let key =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"PROTOCOL" ~doc:"Registry protocol key.")
  in
  let n = Arg.(value & opt int 2 & info [ "n" ] ~doc:"Number of processes.") in
  let crashes =
    Arg.(
      value & opt int 0
      & info [ "crashes" ]
          ~doc:
            "Crash-stop adversary budget for the valency analysis: crash \
             successors count as branches, so a state is critical only if \
             even the adversary's halts commit the outcome.")
  in
  let run key n crashes =
    match (Registry.find key).Registry.build ~n with
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        2
    | None ->
        Fmt.epr "%s does not support n = %d@." key n;
        2
    | Some protocol -> (
        match Valency.find_critical ~crashes protocol.Protocol.config with
        | Some crit ->
            Fmt.pr
              "critical state of %s: bivalent, every successor univalent@."
              protocol.Protocol.name;
            List.iter
              (fun (pid, _, v) ->
                Fmt.pr "  P%d moves next  =>  outcome pinned to %a@." pid
                  Valency.pp_valency v)
              crit.Valency.branches;
            0
        | None ->
            Fmt.pr "no critical state reachable (protocol univalent?)@.";
            1)
  in
  Cmd.v
    (Cmd.info "critical"
       ~doc:
         "Find a critical (bivalent, decision-pending) state of a protocol — \
          the engine of the paper's impossibility proofs")
    Term.(const run $ key $ n $ crashes)

(* --- fault --- *)

let fault_cmd =
  let n =
    Arg.(value & opt int 4 & info [ "n" ] ~doc:"Number of domains.")
  in
  let halts =
    Arg.(
      value & opt int 1
      & info [ "halts" ]
          ~doc:"Domains to halt mid-operation (must be < n).")
  in
  let ops =
    Arg.(
      value & opt int 7 & info [ "ops" ] ~doc:"Operations per domain.")
  in
  let run n halts ops =
    match Runtime.Fault.stress_queue ~ops_per_proc:ops ~n ~halts () with
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        2
    | s ->
        Fmt.pr "%a@." Runtime.Fault.pp_stress s;
        if Runtime.Fault.stress_passed s then 0 else 1
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:
         "Crash-stop stress on real domains: halt some domains \
          mid-operation against the wait-free universal queue and check \
          the survivors complete and the recorded history (crashed \
          operations left pending) still linearizes")
    Term.(const run $ n $ halts $ ops)

(* --- universal object service: load & serve --- *)

let service_object_arg =
  Arg.(
    value & opt string "counter"
    & info [ "object" ] ~docv:"NAME"
        ~doc:"Served object: counter, fifo-queue or kv-map.")

let service_window_arg =
  Arg.(
    value & opt int 32
    & info [ "window" ]
        ~doc:
          "Log positions between state snapshots — the §4.1 truncation \
           window bounding retained memory and replay cost.")

let service_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~doc:"Per-client operation-stream seed (runs replay).")

let service_spec name =
  List.find_opt
    (fun s -> s.Object_spec.name = name)
    (Runtime.Service.default_specs ())

(* --- causal tracing plumbing (shared by load and serve) --- *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record causal invocation traces (announce/claim/help/complete \
           phases plus help edges) and write the merged Chrome \
           trace_event JSON to $(docv) — help chains render as flow \
           arrows between domain tracks in ui.perfetto.dev; audit it \
           offline with wfs trace.")

let trace_sample_arg =
  Arg.(
    value & opt int 64
    & info [ "trace-sample" ] ~docv:"N"
        ~doc:
          "Trace one invocation in $(docv) (rounded up to a power of \
           two); 1 traces everything.")

let help_canary_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "help-canary" ] ~docv:"N"
        ~doc:
          "Route every $(docv)-th announce ticket through the helped slow \
           path (briefly parking after announcing) so cross-client help \
           edges are recorded even when domains time-slice and never \
           race.  Only meaningful while tracing; defaults to 64 when \
           --trace-out is given, else off.")

let resolve_canary ~trace_out ~help_canary =
  match help_canary with
  | Some c -> c
  | None -> if trace_out <> None then 64 else 0

(* After a traced run: write the merged Perfetto trace if requested and
   report the recording volume. *)
let finish_trace ~trace_out =
  (match trace_out with
  | Some path ->
      Obs.Causal.write path;
      let events, edges = Obs.Causal.counts () in
      Fmt.epr "causal trace written to %s (%d events, %d help edges%s)@."
        path events edges
        (let d = Obs.Causal.dropped () in
         if d = 0 then "" else Fmt.str ", %d dropped" d)
  | None -> ());
  Obs.Causal.disable ()

let load_cmd =
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Client domains.")
  in
  let ops =
    Arg.(
      value & opt int 250_000
      & info [ "ops" ]
          ~doc:"Operations per client (each client runs a closed loop).")
  in
  let halts =
    Arg.(
      value & opt int 0
      & info [ "halts" ]
          ~doc:
            "Clients to halt mid-operation; crash runs record the history \
             and check it for linearizability, so --ops must stay small.")
  in
  let run clients ops object_name window seed halts trace_out trace_sample
      help_canary progress profile metrics_out metrics_port =
    obs_setup ~progress ~profile ?metrics_out ?metrics_port ~label:"load"
      (fun () ->
        match service_spec object_name with
        | None ->
            Fmt.epr "unknown object %S (try fifo-queue, counter, kv-map)@."
              object_name;
            2
        | Some spec ->
            (* Causal tracing is always on under load (sampled, so the
               hot path stays within budget): the rings double as the
               crash flight recorder, dumped as JSONL whenever the run
               fails its checks or the harness dies mid-flight. *)
            let canary = resolve_canary ~trace_out ~help_canary in
            Obs.Causal.enable ~sample:trace_sample ();
            let flight_path =
              match trace_out with
              | Some f -> f ^ ".flight.jsonl"
              | None -> "wfs-flight.jsonl"
            in
            let ok = ref false in
            Fun.protect
              ~finally:(fun () ->
                (* runs even when the harness aborts via exception: the
                   post-mortem is most valuable exactly then *)
                if not !ok then begin
                  let lines = Obs.Causal.dump_jsonl flight_path in
                  Fmt.epr "flight recorder: %d events -> %s@." lines
                    flight_path
                end;
                finish_trace ~trace_out)
              (fun () ->
                match
                  Runtime.Service.Load.run ~seed ~window ~halts ~spec ~canary
                    ~clients ~ops_per_client:ops ()
                with
                | exception Invalid_argument msg ->
                    (* an input error, not a crashed run: no post-mortem *)
                    ok := true;
                    Fmt.epr "%s@." msg;
                    2
                | r ->
                    Fmt.pr "%a@." Runtime.Service.Load.pp_report r;
                    if Runtime.Service.Load.passed r then begin
                      ok := true;
                      0
                    end
                    else 1))
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Closed-loop load generator for the universal object service: \
          drive one object from many client domains through the batched + \
          truncating wait-free construction, then prove the run correct — \
          differentially against the sequential specification (crash-free) \
          or with the linearizability checker (--halts).  Reports \
          throughput, latency quantiles and truncation telemetry; watch it \
          live with --metrics-port and wfs top.")
    Term.(
      const run $ clients $ ops $ service_object_arg $ service_window_arg
      $ service_seed_arg $ halts $ trace_out_arg $ trace_sample_arg
      $ help_canary_arg $ progress_arg $ profile_arg $ metrics_out_arg
      $ metrics_port_arg)

let serve_cmd =
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Client domains.")
  in
  let duration =
    Arg.(
      value & opt float 10.
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"How long to keep the service under load before exiting.")
  in
  let run clients duration window seed trace_out trace_sample help_canary
      progress profile metrics_out metrics_port =
    obs_setup ~progress ~profile ?metrics_out ?metrics_port ~label:"serve"
      (fun () ->
        if clients <= 0 || duration <= 0. then begin
          Fmt.epr "serve: clients and duration must be positive@.";
          2
        end
        else begin
          let canary = resolve_canary ~trace_out ~help_canary in
          if trace_out <> None then
            Obs.Causal.enable ~sample:trace_sample ();
          let r =
            Fun.protect
              ~finally:(fun () ->
                if trace_out <> None then finish_trace ~trace_out)
              (fun () ->
                Runtime.Service.serve ~seed ~window ~canary ~clients
                  ~duration_s:duration ())
          in
          Fmt.pr "served %s operations in %.1fs (%s ops/s)@."
            (Obs.Units.si_int r.Runtime.Service.served_ops)
            (float_of_int r.Runtime.Service.serve_duration_ns *. 1e-9)
            (Obs.Units.rate
               (float_of_int r.Runtime.Service.served_ops
               /. (float_of_int r.Runtime.Service.serve_duration_ns *. 1e-9)));
          List.iter
            (fun (name, len) ->
              Fmt.pr "  %-12s %s ops threaded@." name (Obs.Units.si_int len))
            r.Runtime.Service.per_object;
          0
        end)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the universal object service under sustained load: every \
          registry object (queue, counter, kv-map) lifted wait-free and \
          driven round-robin by client domains until the deadline.  Meant \
          to be watched live: --metrics-port P exposes OpenMetrics for \
          wfs top, --metrics-out F appends a scrapeable file sink.")
    Term.(
      const run $ clients $ duration $ service_window_arg $ service_seed_arg
      $ trace_out_arg $ trace_sample_arg $ help_canary_arg $ progress_arg
      $ profile_arg $ metrics_out_arg $ metrics_port_arg)

(* --- trace: summarize / audit a causal trace file --- *)

let trace_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Trace JSON written by a --trace-out run.")
  in
  let audit =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:
            "Exit nonzero unless the trace passes the wait-freedom audit: \
             every completed invocation's own-step count within its \
             object's registered bound, and the help edges acyclic.")
  in
  let run file audit =
    let contents =
      try
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Ok (really_input_string ic (in_channel_length ic)))
      with Sys_error msg -> Error msg
    in
    match contents with
    | Error msg ->
        Fmt.epr "%s@." msg;
        2
    | Ok contents -> (
        match Obs.Causal.Audit.of_trace_json (Obs.Json.of_string contents) with
        | exception Obs.Json.Parse_error msg ->
            Fmt.epr "%s: not JSON: %s@." file msg;
            2
        | exception Invalid_argument msg ->
            Fmt.epr "%s: %s@." file msg;
            2
        | report ->
            Fmt.pr "%a@." Obs.Causal.Audit.pp report;
            if audit then
              if Obs.Causal.Audit.ok report then begin
                Fmt.pr "audit: ok@.";
                0
              end
              else begin
                Fmt.pr "audit: FAILED@.";
                1
              end
            else 0)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Summarize a causal trace recorded by wfs load/serve --trace-out: \
          help-chain depth distribution, own-step and help-round maxima, \
          top helpers — and with --audit, verify the wait-freedom bound \
          (own steps within the construction's 2n+8) and that help edges \
          form a DAG, exiting nonzero on violation")
    Term.(const run $ file $ audit)

(* --- randomized --- *)

let randomized_cmd =
  let flips =
    Arg.(value & opt int 3 & info [ "flips" ]
           ~doc:"Adversarial coin-sequence length for the exhaustive check.")
  in
  let run flips =
    Fmt.pr
      "randomized 2-process consensus from registers (Theorem 2 escapes@.\
       via coin flips — §5's open problem, after Abrahamson):@.@.";
    let v = Randomized.verify_all_coins ~flips () in
    Fmt.pr
      "exhaustive safety: ok=%b over %d configurations (%d joint states)@."
      v.Randomized.ok v.Randomized.configurations v.Randomized.states;
    Fmt.pr "aborts possible with only %d coins: %b@." flips
      v.Randomized.aborts_possible;
    if v.Randomized.ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "randomized"
       ~doc:"Exhaustively check the randomized register consensus extension")
    Term.(const run $ flips)

(* --- live view (shared by top and stats --watch) ---

   Renders one terminal page from two OpenMetrics scrapes: totals come
   from the newer scrape, rates and histogram quantiles from the
   per-interval deltas between the two.  Sections with no data (e.g. the
   runtime block during a pure-simulator run) are omitted. *)

module Live = struct
  open Obs.Export

  type frame = { at : float; samples : sample list }

  let value ?(labels = []) frame name =
    Option.value ~default:0. (find frame.samples name labels)

  let delta ?labels prev cur name =
    value ?labels cur name -. value ?labels prev name

  (* Shards present in a scrape, in numeric order. *)
  let shards frame =
    List.filter_map
      (fun s ->
        if s.s_name = "wfs_pool_shard_states" then
          List.assoc_opt "shard" s.s_labels
        else None)
      frame.samples
    |> List.sort_uniq (fun a b ->
           compare (int_of_string_opt a, a) (int_of_string_opt b, b))

  let buckets frame family =
    List.filter_map
      (fun s ->
        if s.s_name = family ^ "_bucket" then
          match List.assoc_opt "le" s.s_labels with
          | Some "+Inf" -> Some (infinity, s.s_value)
          | Some le ->
              Option.map (fun f -> (f, s.s_value)) (float_of_string_opt le)
          | None -> None
        else None)
      frame.samples
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)

  (* Quantile of the events that fell in (prev, cur]: subtract the two
     cumulative bucket vectors, then walk the still-cumulative deltas to
     the first upper bound covering [q] of the interval's total. *)
  let quantile prev cur family q =
    let pb = buckets prev family in
    let d =
      List.map
        (fun (le, c) ->
          let p = Option.value ~default:0. (List.assoc_opt le pb) in
          (le, c -. p))
        (buckets cur family)
    in
    match List.rev d with
    | [] -> None
    | (_, total) :: _ when total <= 0. -> None
    | (_, total) :: _ ->
        let target = q *. total in
        Option.map fst (List.find_opt (fun (_, c) -> c >= target) d)

  let pp_le = function
    | None -> "-"
    | Some le when le = infinity -> "inf"
    | Some le -> Printf.sprintf "%.0f" le

  let render ~ansi ~title ~prev ~cur =
    let buf = Buffer.create 2048 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let bold s = if ansi then "\027[1m" ^ s ^ "\027[0m" else s in
    let dim s = if ansi then "\027[2m" ^ s ^ "\027[0m" else s in
    let dt =
      let d = cur.at -. prev.at in
      if d > 0. then d else 1.
    in
    let v ?labels name = value ?labels cur name in
    let d ?labels name = delta ?labels prev cur name in
    let rate ?labels name = Obs.Units.rate (d ?labels name /. dt) in
    let ratio num den = if den > 0. then num /. den else 0. in
    add "%s  %s\n\n" (bold title)
      (dim (Printf.sprintf "interval %.1fs" dt));
    (* exploration: states/sec is the headline number of every engine *)
    add "%s  %s states  %s   frontier %s%s\n"
      (bold "explore ")
      (Obs.Units.si (v "wfs_explorer_states_total"))
      (rate "wfs_explorer_states_total")
      (Obs.Units.si (v "wfs_explorer_frontier"))
      (let p = v "wfs_explorer_por_pruned_total" in
       if p > 0. then
         Printf.sprintf "   por-pruned %s  %s" (Obs.Units.si p)
           (rate "wfs_explorer_por_pruned_total")
       else "");
    (* per-shard load: one row per pool member with any series *)
    (match shards cur with
    | [] -> ()
    | shs ->
        add "%s  %s\n" (bold "shards  ")
          (dim "shard     states   states/s       jobs     steals  busy");
        List.iter
          (fun sh ->
            let labels = [ ("shard", sh) ] in
            let busy =
              ratio (d ~labels "wfs_pool_shard_busy_ns") (dt *. 1e9)
            in
            add "         %5s  %9s  %9s  %9s  %9s  %s\n" sh
              (Obs.Units.si (v ~labels "wfs_pool_shard_states"))
              (rate ~labels "wfs_pool_shard_states")
              (Obs.Units.si (v ~labels "wfs_pool_shard_jobs_total"))
              (Obs.Units.si (v ~labels "wfs_pool_shard_steals_total"))
              (Obs.Units.percent (min 1. busy)))
          shs);
    if v "wfs_intern_lookups_total" > 0. then
      add "%s  %s lookups  %s   hit %s   contention %s\n"
        (bold "intern  ")
        (Obs.Units.si (v "wfs_intern_lookups_total"))
        (rate "wfs_intern_lookups_total")
        (Obs.Units.percent
           (ratio (d "wfs_intern_hits_total") (d "wfs_intern_lookups_total")))
        (rate "wfs_intern_contention_total");
    if v "wfs_solver_nodes_total" > 0. then
      add "%s  %s nodes  %s   memo hit %s%s\n"
        (bold "solver  ")
        (Obs.Units.si (v "wfs_solver_nodes_total"))
        (rate "wfs_solver_nodes_total")
        (Obs.Units.percent
           (ratio
              (d "wfs_solver_memo_hits_total")
              (d "wfs_solver_memo_hits_total"
              +. d "wfs_solver_memo_misses_total")))
        (let c = v "wfs_solver_cutoff_sleep_total" in
         if c > 0. then
           Printf.sprintf "   sleep cut %s  %s" (Obs.Units.si c)
             (rate "wfs_solver_cutoff_sleep_total")
         else "");
    (let h = v "wfs_solver_tt_hits_total"
     and m = v "wfs_solver_tt_misses_total" in
     if h +. m > 0. then
       add "%s  hit %s (%s)   rejects %s   backjumps %s  %s\n"
         (bold "solve-tt")
         (Obs.Units.percent
            (ratio
               (d "wfs_solver_tt_hits_total")
               (d "wfs_solver_tt_hits_total"
               +. d "wfs_solver_tt_misses_total")))
         (Obs.Units.si h)
         (Obs.Units.si (v "wfs_solver_tt_footprint_rejects_total"))
         (Obs.Units.si (v "wfs_solver_tt_backjumps_total"))
         (rate "wfs_solver_tt_backjumps_total"));
    let hist = "wfs_universal_rt_wait_free_help_rounds_hist" in
    if v (hist ^ "_count") > 0. then
      add "%s  %s ops  %s   help rounds p50 %s p99 %s   announce %.0f   log %s\n"
        (bold "runtime ")
        (Obs.Units.si (v "wfs_universal_rt_wait_free_ops_total"))
        (rate "wfs_universal_rt_wait_free_ops_total")
        (pp_le (quantile prev cur hist 0.50))
        (pp_le (quantile prev cur hist 0.99))
        (v "wfs_universal_rt_wait_free_announce_occupancy")
        (Obs.Units.si (v "wfs_universal_rt_wait_free_log_length"));
    if v "wfs_consensus_rt_one_shot_retries_total" > 0. then
      add "%s  one-shot retries %s  %s\n"
        (bold "consensus")
        (Obs.Units.si (v "wfs_consensus_rt_one_shot_retries_total"))
        (rate "wfs_consensus_rt_one_shot_retries_total");
    if v "wfs_log_universal_states_total" > 0. then
      add "%s  %s states  %s   max log %s\n"
        (bold "log-univ")
        (Obs.Units.si (v "wfs_log_universal_states_total"))
        (rate "wfs_log_universal_states_total")
        (Obs.Units.si (v "wfs_log_universal_log_length"));
    Buffer.contents buf
end

(* --- top --- *)

let find_substring hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i =
    if i + m > n then None
    else if String.sub hay i m = needle then Some i
    else go (i + 1)
  in
  go 0

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One-shot HTTP GET against the sampler's loopback endpoint, stdlib
   [Unix] only; Connection: close makes EOF the response delimiter. *)
let http_get_metrics port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        "GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
      in
      let _ = Unix.write_substring fd req 0 (String.length req) in
      let buf = Buffer.create 8192 in
      let chunk = Bytes.create 8192 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
      in
      drain ();
      let s = Buffer.contents buf in
      match find_substring s "\r\n\r\n" with
      | Some i -> String.sub s (i + 4) (String.length s - i - 4)
      | None -> s)

let scrape source =
  match
    match source with
    | `File path -> read_whole_file path
    | `Port p -> http_get_metrics p
  with
  | text -> Ok { Live.at = Unix.gettimeofday (); samples = Obs.Export.parse text }
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | exception Obs.Export.Parse_error msg -> Error ("parse error: " ^ msg)

(* Raw, non-echoing stdin so a bare 'q' quits without Enter. *)
let with_raw_stdin ~interactive f =
  if not interactive then f ()
  else
    match Unix.tcgetattr Unix.stdin with
    | exception Unix.Unix_error _ -> f ()
    | tio ->
        let raw = { tio with Unix.c_icanon = false; c_echo = false } in
        Unix.tcsetattr Unix.stdin Unix.TCSANOW raw;
        Fun.protect
          ~finally:(fun () -> Unix.tcsetattr Unix.stdin Unix.TCSANOW tio)
          f

(* Sleep [seconds], returning [true] early if the user pressed q. *)
let wait_or_quit ~interactive seconds =
  if not interactive then begin
    Unix.sleepf seconds;
    false
  end
  else
    match Unix.select [ Unix.stdin ] [] [] seconds with
    | [ _ ], _, _ -> (
        let b = Bytes.create 1 in
        match Unix.read Unix.stdin b 0 1 with
        | 1 -> Bytes.get b 0 = 'q' || Bytes.get b 0 = 'Q'
        | _ -> true (* stdin EOF: select would spin, so stop polling it *))
    | _ -> false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let top_cmd =
  let from_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "from" ] ~docv:"FILE"
          ~doc:
            "Poll $(docv) each interval — the file a concurrent run is \
             rewriting via --metrics-out.")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "Poll http://localhost:$(docv)/metrics each interval — the \
             endpoint a concurrent run is serving via --metrics-port.")
  in
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "i"; "interval" ] ~docv:"SECONDS" ~doc:"Refresh interval.")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "n"; "count" ] ~docv:"N"
          ~doc:
            "Render $(docv) frames and exit (0 = run until q / Ctrl-C / \
             the source disappears).")
  in
  let run from port interval count =
    match (from, port) with
    | None, None ->
        Fmt.epr "wfs top needs a source: --from FILE or --port PORT@.";
        2
    | Some _, Some _ ->
        Fmt.epr "--from and --port are mutually exclusive@.";
        2
    | _ when interval <= 0. ->
        Fmt.epr "--interval must be positive@.";
        2
    | _ ->
        let source, title =
          match from with
          | Some f -> (`File f, Fmt.str "wfs top — %s" f)
          | None ->
              let p = Option.get port in
              (`Port p, Fmt.str "wfs top — localhost:%d/metrics" p)
        in
        let interactive = Unix.isatty Unix.stdin in
        let ansi = Unix.isatty Unix.stdout in
        with_raw_stdin ~interactive (fun () ->
            let quit = ref false in
            let code = ref 0 in
            let frames = ref 0 in
            let misses = ref 0 in
            let prev = ref None in
            while not !quit do
              (match scrape source with
              | Ok cur ->
                  misses := 0;
                  (* first frame renders against itself: totals, no rates *)
                  let p = Option.value ~default:cur !prev in
                  let page = Live.render ~ansi ~title ~prev:p ~cur in
                  if ansi then print_string "\027[2J\027[H";
                  print_string page;
                  if interactive then print_string "\nq to quit\n";
                  flush stdout;
                  prev := Some cur;
                  incr frames;
                  if count > 0 && !frames >= count then quit := true
              | Error msg ->
                  incr misses;
                  if !prev <> None || !misses >= 10 then begin
                    (* the watched run ended (or never appeared) *)
                    Fmt.epr "source gone: %s@." msg;
                    if !prev = None then code := 1;
                    quit := true
                  end);
              if not !quit then quit := wait_or_quit ~interactive interval
            done;
            !code)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal view of a concurrent run's telemetry: poll the \
          OpenMetrics file or endpoint another wfs command is publishing \
          (--metrics-out / --metrics-port) and render per-interval rates \
          — states/s per shard, interner hit rate, help-round quantiles")
    Term.(const run $ from_arg $ port_arg $ interval_arg $ count_arg)

(* --- stats --- *)

let stats_cmd =
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Also write a JSONL trace of the workload to $(docv).")
  in
  let watch_arg =
    Arg.(
      value & opt int 0
      & info [ "watch" ] ~docv:"N"
          ~doc:
            "Re-render a humanized live summary every $(docv) seconds \
             while the workload runs (same page as wfs top); 0 just \
             prints the final snapshot.")
  in
  let run trace_file watch =
    (match trace_file with
    | Some path -> Obs.Trace.set_sink (Obs.Trace.to_file path)
    | None -> ());
    Obs.Metrics.reset ();
    let workload () =
      Obs.Metrics.with_hot (fun () ->
        (* a fixed workload touching every instrumented layer *)
        (* 1. simulator: CAS consensus at n = 3, all schedules *)
        (match (Registry.find "cas").Registry.build ~n:3 with
        | Some p -> ignore (Protocol.verify p)
        | None -> ());
        (* 2. valency: critical-state search on the Theorem 4 election *)
        (match (Registry.find "test-and-set").Registry.build ~n:2 with
        | Some p -> ignore (Valency.find_critical p.Protocol.config)
        | None -> ());
        (* 3. deliberately truncated explorations, one per budget, for
           the truncation accounting (cas at n = 4 has 217 states and
           depth > 4) *)
        (match (Registry.find "cas").Registry.build ~n:4 with
        | Some p ->
            ignore (Explorer.explore ~max_states:100 p.Protocol.config);
            ignore (Explorer.explore ~max_depth:4 p.Protocol.config)
        | None -> ());
        (* 4. runtime: universal queue under two domains, fetch-and-cons,
           and a recorder *)
        let module QU = Runtime.Universal.Lock_free (Runtime.Seq_objects.Queue_of_int) in
        let open Runtime.Seq_objects.Queue_of_int in
        let qu = QU.create () in
        ignore
          (Runtime.Primitives.run_domains 2 (fun pid ->
               for i = 0 to 4_999 do
                 ignore (QU.apply qu (Enq ((pid * 5_000) + i)));
                 ignore (QU.apply qu Deq)
               done));
        let module QW = Runtime.Universal.Wait_free (Runtime.Seq_objects.Queue_of_int) in
        let qw = QW.create ~n:2 () in
        ignore
          (Runtime.Primitives.run_domains 2 (fun pid ->
               for i = 0 to 499 do
                 ignore (QW.apply qw ~pid (Enq i));
                 ignore (QW.apply qw ~pid Deq)
               done));
        let fac = Runtime.Fetch_and_cons.Cas_based.make () in
        for i = 0 to 9_999 do
          ignore (Runtime.Fetch_and_cons.Cas_based.fetch_and_cons fac i)
        done;
        let rounds =
          Runtime.Fetch_and_cons.Rounds.make ~n:2 ~equal:Int.equal
        in
        let h = Runtime.Fetch_and_cons.Rounds.handle rounds ~pid:0 in
        for i = 0 to 99 do
          ignore (Runtime.Fetch_and_cons.Rounds.fetch_and_cons h i)
        done;
        let recorder = Runtime.Recorder.create ~capacity:1_024 in
        for pid = 0 to 1 do
          for i = 0 to 99 do
            ignore
              (Runtime.Recorder.around recorder ~pid ~obj:"q"
                 ~op:(Queues.enq (Value.int i))
                 ~encode_res:(fun () -> Value.unit)
                 (fun () -> ()))
          done
        done)
    in
    if watch <= 0 then workload ()
    else begin
      (* run the workload on its own domain and re-render the live page
         from the sampler ring until it finishes *)
      let sampler = Obs.Sampler.start ~interval_ms:(watch * 1000) () in
      let finished = Atomic.make false in
      let worker =
        Domain.spawn (fun () ->
            Fun.protect
              ~finally:(fun () -> Atomic.set finished true)
              workload)
      in
      let ansi = Unix.isatty Unix.stdout in
      let frame_of (snap : Obs.Sampler.snap) =
        {
          Live.at = float_of_int snap.Obs.Sampler.at_ns /. 1e9;
          samples = Obs.Export.parse (Obs.Export.of_dump snap.Obs.Sampler.values);
        }
      in
      let prev = ref None in
      let last_render = ref 0. in
      while not (Atomic.get finished) do
        Unix.sleepf 0.1;
        let now = Unix.gettimeofday () in
        if now -. !last_render >= float_of_int watch then begin
          last_render := now;
          match Obs.Sampler.latest sampler with
          | None -> ()
          | Some snap ->
              let cur = frame_of snap in
              let p = Option.value ~default:cur !prev in
              if ansi then Fmt.epr "\027[2J\027[H";
              Fmt.epr "%s%!"
                (Live.render ~ansi ~title:"wfs stats — fixed workload"
                   ~prev:p ~cur);
              prev := Some cur
        end
      done;
      Domain.join worker;
      Obs.Sampler.stop sampler
    end;
    Obs.Trace.close ();
    Fmt.pr "%s@." (Obs.Metrics.snapshot_string ());
    0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a fixed workload through the instrumented simulator and \
          runtime, then dump the metrics snapshot as JSON (--watch N \
          additionally live-renders a humanized summary while it runs)")
    Term.(const run $ trace_file $ watch_arg)

(* --- zoo --- *)

let zoo_cmd =
  let run () =
    List.iter
      (fun spec ->
        Fmt.pr "%-22s %d menu operations@." spec.Object_spec.name
          (List.length spec.Object_spec.menu))
      (Zoo.all ());
    0
  in
  Cmd.v (Cmd.info "zoo" ~doc:"List the object zoo") Term.(const run $ const ())

(* --- profile ---

   [wfs profile CMD ... --out prof.json] = run CMD with the span
   profiler on and write the trace to --out.  Equivalent to the
   subcommand's own --profile flag, packaged as a dedicated group so
   profiling runs read naturally.  Note: under [profile verify], --out
   names the trace file, so counterexample export is only available via
   the plain [verify --out ... --profile ...] spelling. *)

let profile_out_arg =
  Arg.(
    value & opt string "prof.json"
    & info [ "out" ] ~docv:"FILE"
        ~doc:
          "Write the Chrome trace_event JSON to $(docv) (load in \
           ui.perfetto.dev or chrome://tracing).")

let profile_cmd =
  let verify =
    let run key n max_states max_depth crashes j progress out =
      verify_run ~progress ~profile:(Some out) key n max_states max_depth None
        crashes false j
    in
    Cmd.v
      (Cmd.info "verify" ~doc:"Profile an exhaustive protocol verification")
      Term.(
        const run $ verify_key_arg $ verify_n_arg $ verify_max_states_arg
        $ verify_max_depth_arg $ verify_crashes_arg $ jobs_arg $ progress_arg
        $ profile_out_arg)
  in
  let census =
    let run budget max_states max_depth j progress out =
      census_run ~progress ~profile:(Some out) budget max_states max_depth
        false false j
    in
    Cmd.v
      (Cmd.info "census" ~doc:"Profile the solver census over the zoo")
      Term.(
        const run $ census_budget_arg $ census_max_states_arg
        $ census_max_depth_arg $ jobs_arg $ progress_arg $ profile_out_arg)
  in
  let hierarchy =
    let run full j progress out =
      hierarchy_run ~progress ~profile:(Some out) full false false j
    in
    Cmd.v
      (Cmd.info "hierarchy"
         ~doc:"Profile the Figure 1-1 hierarchy table generation")
      Term.(
        const run $ hierarchy_full_arg $ jobs_arg $ progress_arg
        $ profile_out_arg)
  in
  Cmd.group
    (Cmd.info "profile"
       ~doc:
         "Run a subcommand under the per-domain span profiler and write a \
          Chrome trace_event JSON timeline (pool jobs, steals, idle waits, \
          exploration phases, solver runs — one thread row per domain)")
    [ verify; census; hierarchy ]

let main =
  Cmd.group
    (Cmd.info "wfs" ~version:"1.0.0"
       ~doc:
         "Wait-free synchronization: the consensus hierarchy and universal \
          constructions of Herlihy (PODC 1988), executable")
    [
      hierarchy_cmd; verify_cmd; replay_cmd; solve_cmd; universal_cmd;
      census_cmd; critical_cmd; fault_cmd; load_cmd; serve_cmd; trace_cmd;
      randomized_cmd; stats_cmd; top_cmd; zoo_cmd; profile_cmd;
    ]

let () = exit (Cmd.eval' main)
